package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/rtp"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// ControlPort is the well-known control port of every multimedia server.
const ControlPort = 5000

// mediaPort is the source port media senders transmit from.
const mediaPort = 5001

// Options tunes a server.
type Options struct {
	// Capacity is the outbound bandwidth for admission control (bits/s).
	Capacity float64
	// Grace is how long a suspended connection is kept alive.
	Grace time.Duration
	// PreRoll is the flow scheduler's transmission lead over playout
	// deadlines (fills the client's media time window).
	PreRoll time.Duration
	// Policy is the QoS grading policy.
	Policy qos.Policy
	// DisableGrading turns the long-term quality adaptation off (the E3
	// ablation baseline).
	DisableGrading bool
	// HeartbeatEvery is the expected client heartbeat period; the liveness
	// sweep runs at this cadence.
	HeartbeatEvery time.Duration
	// LivenessMisses is how many consecutive missed heartbeats declare a
	// client dead and auto-suspend its session (the grace timer then runs
	// as for a voluntary suspend). Liveness is only enforced on sessions
	// that have sent at least one heartbeat.
	LivenessMisses int
	// Obs, when set, receives session/grading/admission telemetry and
	// serves the control-protocol stats snapshot.
	Obs *obs.Scope
}

func (o *Options) fill() {
	if o.Capacity <= 0 {
		o.Capacity = 10_000_000
	}
	if o.Grace <= 0 {
		o.Grace = 30 * time.Second
	}
	if o.PreRoll <= 0 {
		o.PreRoll = 2 * time.Second
	}
	if o.Policy.Alpha == 0 {
		o.Policy = qos.DefaultPolicy()
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.LivenessMisses <= 0 {
		o.LivenessMisses = 3
	}
}

// lockMeter is the server's control-plane mutex, instrumented so the
// data-plane benchmark can prove the per-frame emit path never touches it:
// it counts acquisitions and accumulates wall-clock hold time. The two
// time.Now calls per acquisition cost tens of nanoseconds on control-plane
// operations that each do map work and I/O — negligible — and buy a direct
// measurement of global-lock pressure.
type lockMeter struct {
	mu       sync.Mutex
	acqs     atomic.Int64
	heldNS   atomic.Int64
	lockedAt time.Time // guarded by mu: written after Lock, read before Unlock
}

// Lock acquires the control-plane lock.
func (m *lockMeter) Lock() {
	m.mu.Lock()
	m.acqs.Add(1)
	m.lockedAt = time.Now()
}

// Unlock releases the control-plane lock, accounting the hold.
func (m *lockMeter) Unlock() {
	m.heldNS.Add(int64(time.Since(m.lockedAt)))
	m.mu.Unlock()
}

// Stats returns the acquisition count and cumulative hold time.
func (m *lockMeter) Stats() (acqs int64, held time.Duration) {
	return m.acqs.Load(), time.Duration(m.heldNS.Load())
}

// Server is one multimedia server node.
type Server struct {
	mu lockMeter

	// Name is the server's host name on the network.
	Name string

	clk   clock.Clock
	net   netsim.Net
	db    *Database
	users *auth.DB
	adm   *qos.Admission
	opts  Options

	peers []string // other servers' host names for federated search

	sessions  map[string]*session // keyed by client control address
	byToken   map[string]*session
	byID      map[string]*session // keyed by session ID, for ResumeSession recovery
	nextID    int
	nextSSRC  uint32
	nextQuery int
	searches  map[int]*pendingSearch

	// dedup caches, per client control address, the replies to recently
	// handled request IDs so retransmitted requests are answered
	// idempotently instead of re-running their side effects. It has its
	// own lock so replies can be cached while handlers hold mu (lock
	// order mu → dmu; never the reverse). Rings for clients that never
	// obtained a session (auth/admission rejects) are reaped by a TTL
	// sweep so a reject storm cannot grow the map without bound.
	dmu          sync.Mutex
	dedup        map[string]*dedupRing
	dedupSweepOn bool
	// sweepOn tracks whether the liveness sweep timer is armed; it arms
	// lazily on the first heartbeat and disarms when no heartbeat-capable
	// session remains, so sessions driven by raw packets (tests, old
	// clients) are never liveness-policed.
	sweepOn bool

	// annotations holds user remarks per document name ("the user may
	// also annotate the selected document with his own remarks").
	annotations map[string][]protocol.AnnotationRecord

	// Data-plane counters, resolved once at construction so the per-frame
	// emit path increments atomics directly instead of doing a registry
	// lookup per frame (shared no-ops when telemetry is off).
	mFrames  *stats.Counter
	mPackets *stats.Counter
	mBytes   *stats.Counter
}

// session is one client's server-side state.
type session struct {
	id          string
	user        string
	client      netsim.Addr
	connID      int
	floorLevel  int
	qosMgr      *qos.Manager
	senders     map[string]*sender
	ssrcToID    map[uint32]string
	doc         string
	suspended   bool
	resumeToken string
	graceTimer  *clock.Timer
	srTimer     *clock.Timer
	flowOrigin  time.Time
	startedAt   time.Time
	// lastBeat is the arrival time of the client's latest heartbeat (zero
	// until the first one: such sessions are exempt from the liveness
	// sweep).
	lastBeat time.Time
}

type pendingSearch struct {
	client  netsim.Addr
	reqID   uint32
	hits    []protocol.TopicInfo
	waiting int
	timer   *clock.Timer
}

// New creates a server and registers its control listener on the network.
// It fails when the network cannot bind the server's control address (only
// possible on the live transport).
func New(name string, clk clock.Clock, net netsim.Net, users *auth.DB, db *Database, opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		Name:        name,
		clk:         clk,
		net:         net,
		db:          db,
		users:       users,
		adm:         qos.NewAdmission(opts.Capacity),
		opts:        opts,
		sessions:    map[string]*session{},
		byToken:     map[string]*session{},
		byID:        map[string]*session{},
		dedup:       map[string]*dedupRing{},
		searches:    map[int]*pendingSearch{},
		annotations: map[string][]protocol.AnnotationRecord{},
		nextSSRC:    1000,
	}
	s.adm.SetObs(opts.Obs)
	s.mFrames = opts.Obs.Counter("server_media_frames_sent")
	s.mPackets = opts.Obs.Counter("server_media_packets_sent")
	s.mBytes = opts.Obs.Counter("server_media_bytes_sent")
	if err := net.Listen(s.ctrlAddr(), s.handle); err != nil {
		return nil, fmt.Errorf("server %s: %w", name, err)
	}
	return s, nil
}

// LockStats reports how many times the server-wide control-plane lock has
// been taken and its cumulative wall-clock hold time. The data-plane
// benchmark samples it around the emit phase to prove media pacing runs
// entirely off this lock.
func (s *Server) LockStats() (acqs int64, held time.Duration) { return s.mu.Stats() }

func (s *Server) ctrlAddr() netsim.Addr { return netsim.MakeAddr(s.Name, ControlPort) }

// SetPeers configures the other servers for federated search.
func (s *Server) SetPeers(names []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append([]string(nil), names...)
}

// Database exposes the server's document store.
func (s *Server) Database() *Database { return s.db }

// Admission exposes the admission controller (for experiments).
func (s *Server) Admission() *qos.Admission { return s.adm }

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// QoSManager returns the grading manager of the session attached to the
// given client address (nil when unknown); used by experiments to inspect
// quality trajectories.
func (s *Server) QoSManager(client netsim.Addr) *qos.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[string(client)]; ok {
		return sess.qosMgr
	}
	return nil
}

// dedupCap bounds the per-client reply cache.
const dedupCap = 64

// dedupTTL is how long a reply cache for a client without a session is kept
// after its last use. Clients whose connect was rejected (bad credentials,
// admission refusal) get a ring but never a session, so only this sweep
// frees them; rings of live or suspended sessions are exempt and are
// deleted with the session instead.
const dedupTTL = 2 * time.Minute

// dedupRing is a bounded per-client cache of request IDs and their encoded
// replies. A nil frame marks a request still being handled (in flight):
// its duplicates are dropped silently rather than re-executed.
type dedupRing struct {
	entries  map[uint32][]byte
	order    []uint32
	lastUsed time.Time
}

// get returns the cached reply frame and whether the request ID was seen.
func (r *dedupRing) get(reqID uint32) ([]byte, bool) {
	frame, seen := r.entries[reqID]
	return frame, seen
}

// put records (or completes) a request ID, evicting the oldest when full.
func (r *dedupRing) put(reqID uint32, frame []byte) {
	if _, seen := r.entries[reqID]; !seen {
		if len(r.order) >= dedupCap {
			delete(r.entries, r.order[0])
			r.order = r.order[1:]
		}
		r.order = append(r.order, reqID)
	}
	r.entries[reqID] = frame
}

// dedupRingLocked returns the client's reply cache, refreshing its TTL and
// lazily arming the sessionless-ring sweep; caller holds dmu.
func (s *Server) dedupRingLocked(client string) *dedupRing {
	ring, ok := s.dedup[client]
	if !ok {
		ring = &dedupRing{entries: map[uint32][]byte{}}
		s.dedup[client] = ring
		if !s.dedupSweepOn {
			s.dedupSweepOn = true
			s.clk.AfterFunc(dedupTTL, s.sweepDedup)
		}
	}
	ring.lastUsed = s.clk.Now()
	return ring
}

// sweepDedup evicts reply caches of clients that hold no session and have
// been idle past the TTL. It snapshots the session-keyed addresses under mu
// first and prunes under dmu second, matching the mu → dmu lock order of the
// handler path.
func (s *Server) sweepDedup() {
	s.mu.Lock()
	live := make(map[string]bool, len(s.sessions))
	for addr := range s.sessions {
		live[addr] = true
	}
	s.mu.Unlock()
	now := s.clk.Now()
	s.dmu.Lock()
	for addr, ring := range s.dedup {
		if !live[addr] && now.Sub(ring.lastUsed) >= dedupTTL {
			delete(s.dedup, addr)
		}
	}
	if len(s.dedup) > 0 {
		s.clk.AfterFunc(dedupTTL, s.sweepDedup)
	} else {
		s.dedupSweepOn = false
	}
	s.dmu.Unlock()
}

// reply sends a fire-and-forget control message (request ID 0).
func (s *Server) reply(to netsim.Addr, t protocol.MsgType, body interface{}) {
	s.replyReq(to, 0, t, body)
}

// replyReq answers a request, echoing its request ID and caching the
// encoded reply for idempotent retransmission handling.
func (s *Server) replyReq(to netsim.Addr, reqID uint32, t protocol.MsgType, body interface{}) {
	frame := protocol.MustEncodeReq(t, reqID, body)
	if reqID != 0 {
		s.dmu.Lock()
		s.dedupRingLocked(string(to)).put(reqID, frame)
		s.dmu.Unlock()
	}
	s.sendCtrl(to, frame)
}

// sendCtrl puts one control frame on the wire, making transport refusals
// visible instead of silently losing replies.
func (s *Server) sendCtrl(to netsim.Addr, frame []byte) {
	err := s.net.Send(netsim.Packet{
		From:     s.ctrlAddr(),
		To:       to,
		Payload:  frame,
		Reliable: true,
	})
	if err != nil {
		s.opts.Obs.Counter("server_reply_send_failures").Inc()
		s.opts.Obs.Emit(obs.EvSendFailure, string(to), 0, "control send failed: "+err.Error())
	}
}

// dedupable reports whether a message type is a client request whose
// handling must be idempotent under retransmission.
func dedupable(mt protocol.MsgType) bool {
	switch mt {
	case protocol.MsgConnect, protocol.MsgSubscribe, protocol.MsgTopicList,
		protocol.MsgSearch, protocol.MsgDocRequest, protocol.MsgSuspend,
		protocol.MsgListAnnotations, protocol.MsgStatsRequest:
		return true
	}
	return false
}

// handle dispatches one control packet.
func (s *Server) handle(pkt netsim.Packet) {
	mt, reqID, body, err := protocol.DecodeReq(pkt.Payload)
	if err != nil {
		return
	}
	if reqID != 0 && dedupable(mt) {
		s.dmu.Lock()
		ring := s.dedupRingLocked(string(pkt.From))
		if frame, seen := ring.get(reqID); seen {
			s.dmu.Unlock()
			s.opts.Obs.Counter("server_ctrl_dedup_hits").Inc()
			s.opts.Obs.Emit(obs.EvCtrlDedup, string(pkt.From), int64(reqID), "duplicate "+mt.String())
			if frame != nil {
				// The reply is known: re-send it without re-running the
				// handler. A nil frame means the original is still in
				// flight, so the duplicate is simply dropped.
				s.sendCtrl(pkt.From, frame)
			}
			return
		}
		ring.put(reqID, nil)
		s.dmu.Unlock()
	}
	switch mt {
	case protocol.MsgConnect:
		var m protocol.Connect
		if protocol.DecodeBody(body, &m) == nil {
			s.onConnect(pkt.From, reqID, m)
		}
	case protocol.MsgSubscribe:
		var m protocol.SubscriptionForm
		if protocol.DecodeBody(body, &m) == nil {
			s.onSubscribe(pkt.From, reqID, m)
		}
	case protocol.MsgTopicList:
		s.replyReq(pkt.From, reqID, protocol.MsgTopics, protocol.Topics{Topics: s.db.Topics(s.Name)})
	case protocol.MsgSearch:
		var m protocol.Search
		if protocol.DecodeBody(body, &m) == nil {
			s.onSearch(pkt.From, reqID, m)
		}
	case protocol.MsgSearchResult:
		var m protocol.SearchResult
		if protocol.DecodeBody(body, &m) == nil {
			s.onSearchResult(m)
		}
	case protocol.MsgDocRequest:
		var m protocol.DocRequest
		if protocol.DecodeBody(body, &m) == nil {
			s.onDocRequest(pkt.From, reqID, m)
		}
	case protocol.MsgHeartbeat:
		var m protocol.Heartbeat
		if protocol.DecodeBody(body, &m) == nil {
			s.onHeartbeat(pkt.From, m)
		}
	case protocol.MsgFeedback:
		var m protocol.Feedback
		if protocol.DecodeBody(body, &m) == nil {
			s.onFeedback(pkt.From, m)
		}
	case protocol.MsgPause:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgResume:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgReload:
		s.onMediaOp(pkt.From, mt, protocol.MediaOp{})
	case protocol.MsgDisableMedia:
		var m protocol.MediaOp
		if protocol.DecodeBody(body, &m) == nil {
			s.onMediaOp(pkt.From, mt, m)
		}
	case protocol.MsgAnnotate:
		// Annotations are accepted and logged with the access trail.
		var m protocol.Annotate
		if protocol.DecodeBody(body, &m) == nil {
			s.onAnnotate(pkt.From, m)
		}
	case protocol.MsgListAnnotations:
		var m protocol.ListAnnotations
		if protocol.DecodeBody(body, &m) == nil {
			s.onListAnnotations(pkt.From, reqID, m)
		}
	case protocol.MsgSuspend:
		s.onSuspend(pkt.From, reqID)
	case protocol.MsgDisconnect:
		s.onDisconnect(pkt.From)
	case protocol.MsgStatsRequest:
		s.onStats(pkt.From, reqID)
	}
}

// onHeartbeat refreshes the session's liveness deadline and acks. An ack
// with OK=false tells the client this server holds no such session — the
// fast path to failover after a server restart.
func (s *Server) onHeartbeat(from netsim.Addr, m protocol.Heartbeat) {
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	if ok && !sess.suspended && (m.SessionID == "" || m.SessionID == sess.id) {
		sess.lastBeat = s.clk.Now()
		s.ensureSweepLocked()
		id := sess.id
		s.mu.Unlock()
		s.reply(from, protocol.MsgHeartbeatAck, protocol.HeartbeatAck{OK: true, SessionID: id})
		return
	}
	s.mu.Unlock()
	s.reply(from, protocol.MsgHeartbeatAck, protocol.HeartbeatAck{OK: false})
}

// ensureSweepLocked arms the liveness sweep if it is not already running.
func (s *Server) ensureSweepLocked() {
	if s.sweepOn {
		return
	}
	s.sweepOn = true
	s.clk.AfterFunc(s.opts.HeartbeatEvery, s.sweepLiveness)
}

// sweepLiveness auto-suspends every heartbeat-capable session whose client
// has gone silent past the miss budget; the ordinary grace timer then
// decides between resumption and expiry. The sweep re-arms only while a
// live heartbeat-capable session remains, so an idle server's virtual
// clock can still drain.
func (s *Server) sweepLiveness() {
	s.mu.Lock()
	now := s.clk.Now()
	window := time.Duration(s.opts.LivenessMisses) * s.opts.HeartbeatEvery
	rearm := false
	for _, sess := range s.sessions {
		if sess.suspended || sess.lastBeat.IsZero() {
			continue
		}
		if now.Sub(sess.lastBeat) >= window {
			s.suspendSessionLocked(sess)
			s.opts.Obs.Counter("server_sessions_suspended_liveness").Inc()
			s.opts.Obs.Emit(obs.EvLiveness, sess.user, 0,
				"client silent; session "+sess.id+" auto-suspended")
		} else {
			rearm = true
		}
	}
	if rearm {
		s.clk.AfterFunc(s.opts.HeartbeatEvery, s.sweepLiveness)
	} else {
		s.sweepOn = false
	}
	s.mu.Unlock()
}

// onStats answers a sessionless telemetry snapshot request: the registry's
// sorted metric points plus the shape of the trace ring. With telemetry
// off it answers OK with no metrics, so monitoring tools can distinguish
// "off" from "unreachable".
func (s *Server) onStats(from netsim.Addr, reqID uint32) {
	res := protocol.StatsResult{OK: true, Server: s.Name}
	if sc := s.opts.Obs; sc.Enabled() {
		res.Metrics = sc.Registry().Snapshot()
		res.TraceEvents = sc.Trace().Len()
		res.TraceDropped = sc.Trace().Dropped()
	}
	s.replyReq(from, reqID, protocol.MsgStatsResult, res)
}

// connectExtrasLocked fills the recovery parameters every successful
// ConnectResult carries: the grace window bounding recovery probing, and
// the replica list for failover.
func (s *Server) connectExtrasLocked(res *protocol.ConnectResult) {
	res.GraceSecs = int(s.opts.Grace.Seconds())
	res.Peers = append([]string(nil), s.peers...)
}

// reattachSessionLocked moves a (possibly suspended) session to a client
// address and restarts its paused media. Shared by the voluntary
// resume-token path and the liveness-recovery ResumeSession path.
func (s *Server) reattachSessionLocked(sess *session, from netsim.Addr) {
	sess.suspended = false
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
		sess.graceTimer = nil
	}
	if sess.resumeToken != "" {
		delete(s.byToken, sess.resumeToken)
		sess.resumeToken = ""
	}
	delete(s.sessions, string(sess.client))
	sess.client = from
	s.sessions[string(from)] = sess
	// Resume-before-expiry restores every paused sender, and a fresh
	// liveness deadline keeps the sweep from instantly re-suspending.
	sess.lastBeat = s.clk.Now()
	for _, snd := range sess.senders {
		snd.resume()
	}
	if len(sess.senders) > 0 {
		if sess.srTimer != nil {
			sess.srTimer.Stop()
		}
		sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	}
}

func (s *Server) onConnect(from netsim.Addr, reqID uint32, m protocol.Connect) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()

	// Returning to a suspended session within the grace period skips
	// authentication and admission entirely.
	if m.ResumeToken != "" {
		sess, ok := s.byToken[m.ResumeToken]
		if !ok {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, Reason: "resume token expired"})
			return
		}
		s.reattachSessionLocked(sess, from)
		res := protocol.ConnectResult{OK: true, SessionID: sess.id, Resumed: true}
		s.connectExtrasLocked(&res)
		s.replyReq(from, reqID, protocol.MsgConnectResult, res)
		return
	}

	// Recovering a session by ID after a liveness loss: the client never
	// got a resume token because it never chose to leave. If the session
	// survived (possibly auto-suspended by the sweep), re-attach it;
	// otherwise tell the client the session is gone so it fails over.
	if m.ResumeSession != "" {
		sess, ok := s.byID[m.ResumeSession]
		if !ok {
			s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
				OK: false, SessionLost: true, Reason: "unknown session " + m.ResumeSession})
			return
		}
		wasSuspended := sess.suspended
		s.reattachSessionLocked(sess, from)
		s.ensureSweepLocked()
		if wasSuspended {
			s.opts.Obs.Counter("server_sessions_resumed").Inc()
			s.opts.Obs.Emit(obs.EvSessionResume, sess.user, int64(sess.connID),
				"session "+sess.id+" resumed after liveness loss")
		}
		res := protocol.ConnectResult{OK: true, SessionID: sess.id, Resumed: true}
		s.connectExtrasLocked(&res)
		s.replyReq(from, reqID, protocol.MsgConnectResult, res)
		return
	}

	// Authentication.
	u, err := s.users.Authenticate(m.User, m.Password, now)
	if err == auth.ErrUnknownUser {
		s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
			OK: false, NeedSubscription: true, Reason: "please subscribe"})
		return
	}
	if err != nil {
		s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
			OK: false, Reason: err.Error()})
		return
	}

	// Admission: network condition + connection load + QoS floor +
	// pricing contract.
	peak := m.PeakRate
	if peak <= 0 {
		peak = 2_000_000
	}
	dec := s.adm.Request(qos.ConnRequest{
		User: m.User, Class: u.Class, PeakRate: peak, MinRate: m.MinRate,
		Resumed: m.Failover,
	})
	if dec.Verdict == qos.Rejected {
		s.replyReq(from, reqID, protocol.MsgConnectResult, protocol.ConnectResult{
			OK: false, Reason: dec.Reason})
		return
	}
	s.nextID++
	sess := &session{
		id:         fmt.Sprintf("%s-sess-%d", s.Name, s.nextID),
		user:       m.User,
		client:     from,
		connID:     dec.ConnID,
		floorLevel: m.FloorLevel,
		qosMgr:     qos.NewManager(s.clk, s.opts.Policy),
		senders:    map[string]*sender{},
		ssrcToID:   map[uint32]string{},
		startedAt:  now,
	}
	sess.qosMgr.SetObs(s.opts.Obs)
	s.sessions[string(from)] = sess
	s.byID[sess.id] = sess
	s.opts.Obs.Gauge("server_sessions").Set(int64(len(s.sessions)))
	s.opts.Obs.Emit(obs.EvSessionStart, m.User, int64(dec.ConnID), "session "+sess.id)
	res := protocol.ConnectResult{
		OK: true, SessionID: sess.id,
		GrantedRate: dec.Rate, Degraded: dec.Verdict == qos.AdmittedDegraded,
	}
	s.connectExtrasLocked(&res)
	s.replyReq(from, reqID, protocol.MsgConnectResult, res)
}

func (s *Server) onSubscribe(from netsim.Addr, reqID uint32, m protocol.SubscriptionForm) {
	err := s.users.Subscribe(auth.User{
		Name: m.User, Password: m.Password, RealName: m.RealName,
		Address: m.Address, Email: m.Email, Phone: m.Phone, Class: m.Class,
	}, s.clk.Now())
	res := protocol.SubscribeResult{OK: err == nil}
	if err != nil {
		res.Reason = err.Error()
	}
	s.replyReq(from, reqID, protocol.MsgSubscribeResult, res)
}

func (s *Server) onSearch(from netsim.Addr, reqID uint32, m protocol.Search) {
	local := s.db.Search(m.Token, s.Name)
	if m.NoForward {
		// Fan-out query from a peer server: answer directly.
		s.replyReq(from, reqID, protocol.MsgSearchResult, protocol.SearchResult{
			SearchID: m.SearchID, Hits: local,
		})
		return
	}
	s.mu.Lock()
	peers := append([]string(nil), s.peers...)
	if len(peers) == 0 {
		s.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgSearchResult, protocol.SearchResult{Hits: local})
		return
	}
	s.nextQuery++
	qid := s.nextQuery
	ps := &pendingSearch{client: from, reqID: reqID, hits: local, waiting: len(peers)}
	s.searches[qid] = ps
	// Safety timeout: answer with whatever arrived.
	ps.timer = s.clk.AfterFunc(2*time.Second, func() { s.finishSearch(qid) })
	s.mu.Unlock()
	for _, p := range peers {
		s.net.Send(netsim.Packet{
			From: s.ctrlAddr(),
			To:   netsim.MakeAddr(p, ControlPort),
			Payload: protocol.MustEncode(protocol.MsgSearch, protocol.Search{
				Token: m.Token, NoForward: true, SearchID: qid,
			}),
			Reliable: true,
		})
	}
}

func (s *Server) onSearchResult(m protocol.SearchResult) {
	s.mu.Lock()
	ps, ok := s.searches[m.SearchID]
	if !ok {
		s.mu.Unlock()
		return
	}
	ps.hits = append(ps.hits, m.Hits...)
	ps.waiting--
	done := ps.waiting == 0
	s.mu.Unlock()
	if done {
		s.finishSearch(m.SearchID)
	}
}

func (s *Server) finishSearch(qid int) {
	s.mu.Lock()
	ps, ok := s.searches[qid]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.searches, qid)
	if ps.timer != nil {
		ps.timer.Stop()
	}
	hits := ps.hits
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Server != hits[j].Server {
			return hits[i].Server < hits[j].Server
		}
		return hits[i].Name < hits[j].Name
	})
	client := ps.client
	s.mu.Unlock()
	s.replyReq(client, ps.reqID, protocol.MsgSearchResult, protocol.SearchResult{Hits: hits})
}

func (s *Server) onDocRequest(from netsim.Addr, reqID uint32, m protocol.DocRequest) {
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	if !ok || sess.suspended {
		s.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
			OK: false, Reason: "no active session"})
		return
	}
	doc, ok := s.db.Get(m.Name)
	if !ok {
		s.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
			OK: false, Reason: "document not found: " + m.Name})
		return
	}
	// Tear down any previous document's flows.
	s.stopSendersLocked(sess)
	sess.doc = m.Name
	sess.qosMgr = qos.NewManager(s.clk, s.opts.Policy)
	sess.qosMgr.SetObs(s.opts.Obs)
	sess.ssrcToID = map[uint32]string{}
	s.opts.Obs.Counter("server_docs_served").Inc()

	// The flow scheduler computes the flow scenario and activates the
	// media servers. The pre-roll lead matches the client's media time
	// window (plus a margin), so that the deliberate initial delay fills
	// each buffer to exactly its window.
	preRoll := s.opts.PreRoll
	if m.WindowMS > 0 {
		preRoll = time.Duration(m.WindowMS)*time.Millisecond + 100*time.Millisecond
	}
	flows := scenario.BuildFlow(doc.Scenario, scenario.FlowOptions{
		PreRoll: preRoll,
		Rate: func(st *scenario.Stream) float64 {
			return media.ForStream(st).Bitrate(0)
		},
	})
	var announces []protocol.StreamAnnounce
	clientHost := from.Host()
	base := m.MediaPortBase
	if base <= 0 {
		base = 7000
	}
	// A short setup delay keeps the first media packets from racing the
	// DocResponse on the unordered datagram path.
	origin := s.clk.Now().Add(200 * time.Millisecond)
	for i, f := range flows {
		src := media.ForStream(f.Stream)
		s.nextSSRC++
		ssrc := s.nextSSRC
		port := base + i
		snd := newSender(s, sess.qosMgr, f, src, ssrc, netsim.MakeAddr(clientHost, port), origin)
		sess.senders[f.Stream.ID] = snd
		sess.ssrcToID[ssrc] = f.Stream.ID
		sess.qosMgr.Register(qos.StreamConfig{
			ID:     f.Stream.ID,
			Kind:   f.Stream.Type,
			Group:  f.Stream.SyncGroup,
			Levels: src.Levels(),
			Floor:  minInt(sess.floorLevel, src.Levels()-1),
		})
		announces = append(announces, protocol.StreamAnnounce{
			StreamID:        f.Stream.ID,
			SSRC:            ssrc,
			Port:            port,
			PayloadType:     byte(src.PayloadType(0)),
			Rate:            f.Rate,
			FrameIntervalUS: src.FrameInterval().Microseconds(),
			Levels:          src.Levels(),
		})
	}
	s.users.LogRetrieval(sess.user, m.Name, s.clk.Now())
	s.mu.Unlock()

	s.replyReq(from, reqID, protocol.MsgDocResponse, protocol.DocResponse{
		OK:          true,
		Name:        doc.Name,
		ScenarioSrc: doc.Source,
		Streams:     announces,
	})
	// Activate the media servers and the periodic RTCP sender reports.
	s.mu.Lock()
	sess.flowOrigin = origin
	for _, snd := range sess.senders {
		snd.start()
	}
	if sess.srTimer != nil {
		sess.srTimer.Stop()
	}
	sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	s.mu.Unlock()
}

// sendSenderReports emits one RTCP SR per active media sender so receivers
// can map RTP timestamps to the sender's wall clock (RFC 1889 §6.3). The
// server lock covers only the session snapshot; report construction walks
// each sender under that sender's own lock and the sends happen lock-free.
func (s *Server) sendSenderReports(sess *session) {
	s.mu.Lock()
	if sess.suspended {
		s.mu.Unlock()
		return
	}
	now := s.clk.Now()
	mediaTime := now.Sub(sess.flowOrigin)
	if mediaTime < 0 {
		mediaTime = 0
	}
	snds := make([]*sender, 0, len(sess.senders))
	for _, snd := range sess.senders {
		snds = append(snds, snd)
	}
	if len(snds) > 0 {
		sess.srTimer = s.clk.AfterFunc(5*time.Second, func() { s.sendSenderReports(sess) })
	}
	s.mu.Unlock()
	from := netsim.MakeAddr(s.Name, mediaPort)
	for _, snd := range snds {
		if sr := snd.report(now, mediaTime); sr != nil {
			s.net.Send(netsim.Packet{From: from, To: snd.to, Payload: sr.Marshal()})
		}
	}
}

func minInt(a, b int) int {
	if a <= 0 {
		return b
	}
	if a < b {
		return a
	}
	return b
}

func (s *Server) onFeedback(from netsim.Addr, m protocol.Feedback) {
	// One short critical section snapshots the session's SSRC map and QoS
	// manager; report decoding and grading then run off the server lock
	// (the manager has its own fine-grained lock).
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	var mgr *qos.Manager
	var ssrcToID map[uint32]string
	if ok {
		mgr = sess.qosMgr
		ssrcToID = make(map[uint32]string, len(sess.ssrcToID))
		for ssrc, id := range sess.ssrcToID {
			ssrcToID[ssrc] = id
		}
	}
	s.mu.Unlock()
	if !ok || s.opts.DisableGrading {
		return
	}
	parts, err := rtp.SplitCompound(m.RTCP)
	if err != nil {
		return
	}
	for _, part := range parts {
		cp, err := rtp.UnmarshalControl(part)
		if err != nil || cp.RR == nil {
			continue
		}
		for _, block := range cp.RR.Reports {
			id, ok := ssrcToID[block.SSRC]
			if !ok {
				continue
			}
			if acts := mgr.Feedback(qos.FromRTCP(id, block, s.clk.Now())); len(acts) > 0 {
				// Grading changed the stream mix's rate: renegotiate the
				// session's reservation so freed bandwidth returns to the
				// admission pool ([KRI 94]-style service renegotiation).
				s.renegotiateSession(sess)
			}
		}
	}
}

// renegotiateSession resizes the session's bandwidth reservation to the
// aggregate nominal rate of its streams at their current quality levels.
// The server lock covers only the sender-list snapshot; per-stream rates
// are read through each sender's own lock.
func (s *Server) renegotiateSession(sess *session) {
	s.mu.Lock()
	snds := make([]*sender, 0, len(sess.senders))
	for _, snd := range sess.senders {
		snds = append(snds, snd)
	}
	connID := sess.connID
	s.mu.Unlock()
	total := 0.0
	for _, snd := range snds {
		total += snd.nominalRate()
	}
	s.adm.Renegotiate(connID, total)
}

func (s *Server) onMediaOp(from netsim.Addr, mt protocol.MsgType, m protocol.MediaOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[string(from)]
	if !ok || sess.suspended {
		// A suspended session's media is parked behind the grace machinery;
		// a delayed fire-and-forget resume/reload must not restart senders
		// toward a client the suspend machinery believes is paused. Only
		// the resume-token / ResumeSession paths may wake it.
		return
	}
	switch mt {
	case protocol.MsgPause:
		for _, snd := range sess.senders {
			snd.pause()
		}
	case protocol.MsgResume:
		for _, snd := range sess.senders {
			snd.resume()
		}
	case protocol.MsgReload:
		origin := s.clk.Now()
		for _, snd := range sess.senders {
			snd.restart(origin)
		}
	case protocol.MsgDisableMedia:
		if snd, ok := sess.senders[m.StreamID]; ok {
			snd.disable()
		}
	}
}

func (s *Server) onAnnotate(from netsim.Addr, m protocol.Annotate) {
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	if !ok {
		s.mu.Unlock()
		return
	}
	doc := sess.doc
	s.annotations[doc] = append(s.annotations[doc], protocol.AnnotationRecord{
		User: sess.user, Text: m.Text, AtUnixMilli: s.clk.Now().UnixMilli(),
	})
	s.mu.Unlock()
	s.users.LogRetrieval(sess.user, fmt.Sprintf("annotate %s: %s", doc, m.Text), s.clk.Now())
}

// onListAnnotations returns the remarks stored for a document.
func (s *Server) onListAnnotations(from netsim.Addr, reqID uint32, m protocol.ListAnnotations) {
	s.mu.Lock()
	doc := m.Doc
	if doc == "" {
		if sess, ok := s.sessions[string(from)]; ok {
			doc = sess.doc
		}
	}
	recs := append([]protocol.AnnotationRecord(nil), s.annotations[doc]...)
	s.mu.Unlock()
	s.replyReq(from, reqID, protocol.MsgAnnotations, protocol.Annotations{Doc: doc, Records: recs})
}

// suspendSessionLocked pauses the session's media and parks it behind a
// fresh resume token and grace timer. Caller holds s.mu. Used both for the
// paper's voluntary suspend and for liveness auto-suspension.
func (s *Server) suspendSessionLocked(sess *session) string {
	for _, snd := range sess.senders {
		snd.pause()
	}
	sess.suspended = true
	s.nextID++
	sess.resumeToken = fmt.Sprintf("%s-tok-%d", s.Name, s.nextID)
	s.byToken[sess.resumeToken] = sess
	tok := sess.resumeToken
	// "The suspended connection remains active for a period of time ...
	// when this interval is passed the connection closes and the attached
	// client is informed about the event."
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
	}
	sess.graceTimer = s.clk.AfterFunc(s.opts.Grace, func() { s.expireSuspended(tok) })
	return tok
}

func (s *Server) onSuspend(from netsim.Addr, reqID uint32) {
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	if !ok {
		s.mu.Unlock()
		s.replyReq(from, reqID, protocol.MsgSuspendResult, protocol.SuspendResult{OK: false})
		return
	}
	tok := s.suspendSessionLocked(sess)
	grace := s.opts.Grace
	s.mu.Unlock()
	s.replyReq(from, reqID, protocol.MsgSuspendResult, protocol.SuspendResult{
		OK: true, ResumeToken: tok, GraceSecs: int(grace.Seconds()),
	})
}

func (s *Server) expireSuspended(token string) {
	s.mu.Lock()
	sess, ok := s.byToken[token]
	if !ok || !sess.suspended {
		s.mu.Unlock()
		return
	}
	delete(s.byToken, token)
	delete(s.sessions, string(sess.client))
	delete(s.byID, sess.id)
	s.dmu.Lock()
	delete(s.dedup, string(sess.client))
	s.dmu.Unlock()
	s.stopSendersLocked(sess)
	s.adm.Release(sess.connID)
	s.opts.Obs.Gauge("server_sessions").Set(int64(len(s.sessions)))
	s.opts.Obs.Emit(obs.EvSessionEnd, sess.user, int64(sess.connID), "grace period expired")
	s.users.ChargeSession(sess.user, s.clk.Now().Sub(sess.startedAt), s.clk.Now())
	s.users.LogLogout(sess.user, s.clk.Now())
	client := sess.client
	s.mu.Unlock()
	s.reply(client, protocol.MsgError, protocol.ErrorMsg{Msg: "suspended connection closed: grace period expired"})
}

func (s *Server) onDisconnect(from netsim.Addr) {
	s.mu.Lock()
	sess, ok := s.sessions[string(from)]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, string(from))
	delete(s.byID, sess.id)
	s.dmu.Lock()
	delete(s.dedup, string(from))
	s.dmu.Unlock()
	if sess.resumeToken != "" {
		delete(s.byToken, sess.resumeToken)
	}
	if sess.graceTimer != nil {
		sess.graceTimer.Stop()
	}
	s.stopSendersLocked(sess)
	s.adm.Release(sess.connID)
	s.opts.Obs.Gauge("server_sessions").Set(int64(len(s.sessions)))
	s.opts.Obs.Emit(obs.EvSessionEnd, sess.user, int64(sess.connID), "client disconnect")
	s.users.ChargeSession(sess.user, s.clk.Now().Sub(sess.startedAt), s.clk.Now())
	s.users.LogLogout(sess.user, s.clk.Now())
	s.mu.Unlock()
}

func (s *Server) stopSendersLocked(sess *session) {
	for _, snd := range sess.senders {
		snd.stop()
	}
	sess.senders = map[string]*sender{}
	if sess.srTimer != nil {
		sess.srTimer.Stop()
		sess.srTimer = nil
	}
}

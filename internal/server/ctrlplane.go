package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// This file is the control-plane load harness, the sibling of
// RunDataPlaneLoad: it stands up one server and measures the session
// bookkeeping paths under scale in three phases. The connect storm drives
// cfg.Sessions fresh connects — each transmitted cfg.DupFactor times with
// the same request ID, the worst case the reliable client produces under
// loss — from cfg.Workers goroutines, and verifies the dedup layer absorbed
// every duplicate: one ring and exactly one admission decision per client,
// no reply lost. The heartbeat phase beats every session once, populating
// the liveness wheels. The sweep phase advances the virtual clock through
// cfg.SweepTicks liveness ticks with every session resident but none due,
// measuring the per-tick cost of the periodic work — the number that must
// stay flat as resident sessions grow.

// ControlPlaneConfig sizes one load run.
type ControlPlaneConfig struct {
	// Sessions is the number of distinct storm clients (= resident
	// sessions after the storm).
	Sessions int
	// DupFactor is how many times each client transmits its connect
	// request (≥ 1; duplicates carry the same request ID).
	DupFactor int
	// Workers is the number of concurrent storm goroutines.
	Workers int
	// SweepTicks is how many liveness sweep ticks the sweep phase spans.
	SweepTicks int
}

func (c *ControlPlaneConfig) fill() {
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.DupFactor <= 0 {
		c.DupFactor = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SweepTicks <= 0 {
		c.SweepTicks = 32
	}
}

// ControlPlaneResult is one load run's measurement, JSON-shaped for
// BENCH_controlplane.json.
type ControlPlaneResult struct {
	Sessions  int `json:"sessions"`
	DupFactor int `json:"dup_factor"`
	Workers   int `json:"workers"`

	// Connect storm: fresh session establishment under duplicate fire.
	ConnectsPerSec     float64 `json:"connects_per_sec"`
	CtrlReqsPerSec     float64 `json:"ctrl_reqs_per_sec"` // includes duplicates
	AdmissionDecisions int64   `json:"admission_decisions"`
	DedupRings         int     `json:"dedup_rings"`

	// Heartbeat phase: one beat per session, wheel scheduling included.
	HeartbeatsPerSec float64 `json:"heartbeats_per_sec"`

	// Sweep phase: mean wall cost of one liveness sweep tick with every
	// session resident and none due. The timer-wheel claim is that this
	// stays flat as sessions grow; the old full-map sweep scanned every
	// resident session per tick.
	SweepTicks      int     `json:"sweep_ticks"`
	SweepTickMicros float64 `json:"sweep_tick_us"`

	// Whole-run control-plane lock pressure (write side, all shards).
	LockAcqsTotal  int64 `json:"lock_acqs_total"`
	LockHeldMicros int64 `json:"lock_held_us"`

	// Control-span distributions (µs): per-request handler service time,
	// shard lock wait (merged across shards), and liveness sweep tick cost.
	HandleP50    float64 `json:"handle_p50_us"`
	HandleP95    float64 `json:"handle_p95_us"`
	HandleP99    float64 `json:"handle_p99_us"`
	HandleMax    float64 `json:"handle_max_us"`
	LockWaitP99  float64 `json:"lock_wait_p99_us"`
	LockWaitMax  float64 `json:"lock_wait_max_us"`
	SweepTickP99 float64 `json:"sweep_tick_p99_us"`
}

// RunControlPlaneLoad runs the three phases described above and validates
// the storm invariants before reporting throughput.
func RunControlPlaneLoad(cfg ControlPlaneConfig) (ControlPlaneResult, error) {
	cfg.fill()
	var res ControlPlaneResult
	res.Sessions = cfg.Sessions
	res.DupFactor = cfg.DupFactor
	res.Workers = cfg.Workers
	res.SweepTicks = cfg.SweepTicks

	clk := clock.NewSim()
	net := newSinkNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "bench", Password: "pw", Email: "bench@load", Class: qos.Standard,
	}, clk.Now()); err != nil {
		return res, err
	}
	scope := obs.NewScope(clk)
	srv, err := New("srv", clk, net, users, NewDatabase(), Options{
		Capacity:       1e12, // admission must not cap the fleet
		Grace:          time.Hour,
		HeartbeatEvery: time.Second,
		Obs:            scope,
		// Keep every session's liveness deadline beyond the sweep phase so
		// the measured ticks see full wheels with nothing due.
		LivenessMisses: cfg.SweepTicks + 60,
	})
	if err != nil {
		return res, err
	}

	// Each storm client listens on its own address and counts the replies
	// it receives, so "no reply lost" is checked end-to-end.
	addrs := make([]netsim.Addr, cfg.Sessions)
	connectReplies := make([]atomic.Int32, cfg.Sessions)
	var hbAcks atomic.Int64
	for i := range addrs {
		addrs[i] = netsim.MakeAddr(fmt.Sprintf("load%d", i), 6000)
		i := i
		if err := net.Listen(addrs[i], func(p netsim.Packet) {
			mt, _, _, err := protocol.DecodeReq(p.Payload)
			if err != nil {
				return
			}
			switch mt {
			case protocol.MsgConnectResult:
				connectReplies[i].Add(1)
			case protocol.MsgHeartbeatAck:
				hbAcks.Add(1)
			}
		}); err != nil {
			return res, err
		}
	}
	ctrl := netsim.MakeAddr("srv", ControlPort)

	// fanOut sends one frame per client from cfg.Workers goroutines,
	// repeated dups times back-to-back (retransmissions of one request
	// are sequential in the real client).
	fanOut := func(frame []byte, dups int) time.Duration {
		var wg sync.WaitGroup
		per := (cfg.Sessions + cfg.Workers - 1) / cfg.Workers
		t0 := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > cfg.Sessions {
				hi = cfg.Sessions
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					for d := 0; d < dups; d++ {
						net.Send(netsim.Packet{
							From: addrs[i], To: ctrl, Payload: frame, Reliable: true,
						})
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		return time.Since(t0)
	}

	// Phase 1: the connect storm. One frame serves every client — request
	// IDs are scoped per client address.
	connectFrame := protocol.MustEncodeReq(protocol.MsgConnect, 1,
		protocol.Connect{User: "bench", Password: "pw"})
	elapsed := fanOut(connectFrame, cfg.DupFactor)
	if elapsed > 0 {
		res.ConnectsPerSec = float64(cfg.Sessions) / elapsed.Seconds()
		res.CtrlReqsPerSec = float64(cfg.Sessions*cfg.DupFactor) / elapsed.Seconds()
	}

	// Storm invariants.
	if got := srv.Sessions(); got != cfg.Sessions {
		return res, fmt.Errorf("controlplane: %d sessions after storm, want %d", got, cfg.Sessions)
	}
	res.AdmissionDecisions = srv.Admission().Decisions()
	if res.AdmissionDecisions != int64(cfg.Sessions) {
		return res, fmt.Errorf("controlplane: %d admission decisions for %d clients; duplicates leaked past dedup",
			res.AdmissionDecisions, cfg.Sessions)
	}
	res.DedupRings = srv.dedupLen()
	if res.DedupRings > cfg.Sessions {
		return res, fmt.Errorf("controlplane: %d dedup rings for %d clients, want ≤ 1 per client",
			res.DedupRings, cfg.Sessions)
	}
	for i := range connectReplies {
		if got := int(connectReplies[i].Load()); got != cfg.DupFactor {
			return res, fmt.Errorf("controlplane: client %d got %d ConnectResults, want %d (one per transmission)",
				i, got, cfg.DupFactor)
		}
	}

	// Phase 2: one heartbeat per session; every session lands on its
	// shard's liveness wheel.
	hbFrame := protocol.MustEncode(protocol.MsgHeartbeat, protocol.Heartbeat{})
	elapsed = fanOut(hbFrame, 1)
	if elapsed > 0 {
		res.HeartbeatsPerSec = float64(cfg.Sessions) / elapsed.Seconds()
	}
	if got := hbAcks.Load(); got != int64(cfg.Sessions) {
		return res, fmt.Errorf("controlplane: %d heartbeat acks, want %d", got, cfg.Sessions)
	}

	// Phase 3: sweep cost. Advance the virtual clock through SweepTicks
	// liveness ticks; every session is resident but none is due, so the
	// wall time here is the periodic bookkeeping overhead itself.
	t0 := time.Now()
	clk.Advance(time.Duration(cfg.SweepTicks) * time.Second)
	sweepElapsed := time.Since(t0)
	res.SweepTickMicros = float64(sweepElapsed.Microseconds()) / float64(cfg.SweepTicks)

	if got := srv.Sessions(); got != cfg.Sessions {
		return res, fmt.Errorf("controlplane: %d sessions after sweep phase, want %d (sweep suspended live sessions)",
			got, cfg.Sessions)
	}

	acqs, held := srv.LockStats()
	res.LockAcqsTotal = acqs
	res.LockHeldMicros = held.Microseconds()

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	res.HandleP50 = us(srv.hHandle.P50())
	res.HandleP95 = us(srv.hHandle.P95())
	res.HandleP99 = us(srv.hHandle.P99())
	res.HandleMax = us(srv.hHandle.Max())
	if lw := srv.LockWaitHist(); lw != nil {
		res.LockWaitP99 = us(lw.P99())
		res.LockWaitMax = us(lw.Max())
	}
	res.SweepTickP99 = us(srv.hLiveTick.P99())
	return res, nil
}

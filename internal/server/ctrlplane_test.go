package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// BenchmarkControlPlane measures session establishment under duplicate-fire
// connect storms, heartbeat throughput, and the per-tick liveness sweep cost
// at growing resident-session counts. The sweep metric is the tentpole
// claim: with the timer wheel it should stay flat as sessions grow, where
// the old full-map sweep scanned every resident session per tick.
func BenchmarkControlPlane(b *testing.B) {
	for _, sessions := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunControlPlaneLoad(ControlPlaneConfig{
					Sessions:  sessions,
					DupFactor: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ConnectsPerSec, "connects/s")
				b.ReportMetric(res.HeartbeatsPerSec, "heartbeats/s")
				b.ReportMetric(res.SweepTickMicros, "sweep-µs/tick")
				b.ReportMetric(float64(res.LockAcqsTotal), "lock-acqs")
			}
		})
	}
}

// TestConnectStormInvariants is the connect-storm regression test: N
// clients each firing the same connect request DupFactor times must end as
// exactly N sessions with exactly N admission decisions, at most one dedup
// ring per client, and no transmission left unanswered. RunControlPlaneLoad
// checks each invariant internally and errors on violation, so pre-dedup
// regressions (duplicate admissions, lost replies) fail here.
func TestConnectStormInvariants(t *testing.T) {
	res, err := RunControlPlaneLoad(ControlPlaneConfig{
		Sessions:   96,
		DupFactor:  4,
		Workers:    4,
		SweepTicks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdmissionDecisions != 96 {
		t.Fatalf("admission decisions = %d, want exactly one per client (96)", res.AdmissionDecisions)
	}
	if res.DedupRings == 0 || res.DedupRings > 96 {
		t.Fatalf("dedup rings = %d, want 1..96 (≤ 1 per client)", res.DedupRings)
	}
	if res.ConnectsPerSec <= 0 || res.HeartbeatsPerSec <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
}

// TestControlPlaneRaceStress drives connect/heartbeat/disconnect churn for
// many clients from concurrent goroutines — every send lands in the
// server's handler on the caller's goroutine — while readers hammer the
// unmetered accessors. Under -race (make race / make check) this proves the
// sharded session state, the dedup rings and the timer wheels are sound
// under real parallelism.
func TestControlPlaneRaceStress(t *testing.T) {
	const clients = 48
	clk := clock.NewSim()
	net := newSinkNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "bench", Password: "pw", Email: "bench@stress", Class: qos.Standard,
	}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	srv, err := New("srv", clk, net, users, NewDatabase(), Options{
		Capacity: 1e12, Grace: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := netsim.MakeAddr("srv", ControlPort)

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		addr := netsim.MakeAddr(fmt.Sprintf("stress%d", i), 6000)
		wg.Add(1)
		go func(addr netsim.Addr) {
			defer wg.Done()
			send := func(frame []byte) {
				net.Send(netsim.Packet{From: addr, To: ctrl, Payload: frame, Reliable: true})
			}
			hb := protocol.MustEncode(protocol.MsgHeartbeat, protocol.Heartbeat{})
			for r := uint32(0); r < 5; r++ {
				connect := protocol.MustEncodeReq(protocol.MsgConnect, 100+r,
					protocol.Connect{User: "bench", Password: "pw"})
				send(connect)
				send(connect) // duplicate through the dedup ring
				send(hb)
				send(protocol.MustEncodeReq(protocol.MsgDisconnect, 200+r, protocol.Disconnect{}))
			}
			send(protocol.MustEncodeReq(protocol.MsgConnect, 300,
				protocol.Connect{User: "bench", Password: "pw"}))
		}(addr)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			addr := netsim.MakeAddr(fmt.Sprintf("stress%d", r), 6000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = srv.Sessions()
				_, _ = srv.LockStats()
				_ = srv.QoSManager(addr)
				_ = srv.Admission().Reserved()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Drain the timer wheels (dedup + liveness ticks) with everyone resident.
	clk.Advance(5 * time.Second)
	if got := srv.Sessions(); got != clients {
		t.Fatalf("sessions after churn = %d, want %d", got, clients)
	}
}

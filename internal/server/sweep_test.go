package server

import (
	"testing"

	"repro/internal/protocol"
)

// TestDedupSweepQuiescesWithLiveSession pins the satellite-1 fix: once a
// ring's address owns a live session, the ring's lifetime is the session's
// — the expiry wheel must let go of it and the sweep timer must disarm.
// Pre-fix, the dedup sweep re-armed itself forever as long as ANY ring
// existed, so an idle server with one connected client never let the
// virtual clock go quiet.
func TestDedupSweepQuiescesWithLiveSession(t *testing.T) {
	h := newFaultHarness(t, Options{})
	h.sendReq(1, protocol.MsgConnect, protocol.Connect{User: "u", Password: "p", PeakRate: 1_000_000})
	var cr protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr)
	if !cr.OK {
		t.Fatalf("connect = %+v", cr)
	}

	// Run far past the dedup TTL with nothing else happening. The only
	// ring belongs to the connected client's session, so the sweep must
	// drop it from the wheel and stop re-arming.
	h.clk.RunFor(3 * dedupTTL)
	if n := h.clk.Pending(); n != 0 {
		t.Fatalf("%d timers still pending on an idle server; the dedup sweep never quiesced", n)
	}

	// The ring itself must survive the sweep (it dies with the session):
	// a retransmission of the original connect is answered from the cache,
	// not re-admitted.
	decisions := h.srv.Admission().Decisions()
	h.sendReq(1, protocol.MsgConnect, protocol.Connect{User: "u", Password: "p", PeakRate: 1_000_000})
	var cr2 protocol.ConnectResult
	h.lastReply(t, protocol.MsgConnectResult, &cr2)
	if !cr2.OK || cr2.SessionID != cr.SessionID {
		t.Fatalf("retransmitted connect = %+v, want cached reply for session %s", cr2, cr.SessionID)
	}
	if got := h.srv.Admission().Decisions(); got != decisions {
		t.Fatalf("retransmission cost %d extra admission decisions", got-decisions)
	}
	if got := h.srv.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}

// TestAccessorsStayOffLockMeter pins the satellite-3 fix: the read-only
// accessors Sessions and QoSManager must not take the metered write lock —
// pre-fix they polluted LockStats, hiding real contention behind monitoring
// noise and invalidating the data plane's paced_lock_acqs == 0 proof.
func TestAccessorsStayOffLockMeter(t *testing.T) {
	h := newFaultHarness(t, Options{})
	h.connectAndPlay(t)

	acqs0, _ := h.srv.LockStats()
	for i := 0; i < 200; i++ {
		if got := h.srv.Sessions(); got != 1 {
			t.Fatalf("sessions = %d, want 1", got)
		}
		if h.srv.QoSManager(fakeClient) == nil {
			t.Fatal("no QoS manager for the connected client")
		}
	}
	acqs1, _ := h.srv.LockStats()
	if acqs1 != acqs0 {
		t.Fatalf("read-only accessors took the metered write lock %d times; they must serve off the read side",
			acqs1-acqs0)
	}
}

// Package server implements the multimedia server of the paper's
// architecture: the multimedia database holding presentation scenarios, the
// flow scheduler that derives per-stream flow scenarios and activates the
// media servers, the per-session media senders with their quality
// converters, the server QoS manager fed by client feedback reports,
// connection admission, suspension with a grace period, and federated
// search across servers.
package server

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/hml"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// Document is one stored hypermedia document with its parsed scenario.
type Document struct {
	Name     string
	Source   string
	Doc      *hml.Document
	Scenario *scenario.Scenario
	// Description is the catalogue blurb.
	Description string
}

// Database is the multimedia database: named documents plus their parsed
// presentation scenarios.
type Database struct {
	mu   sync.Mutex
	docs map[string]*Document
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{docs: map[string]*Document{}} }

// Put parses, validates and stores a document under name.
func (db *Database) Put(name, src, description string) error {
	doc, err := hml.Parse(src)
	if err != nil {
		return err
	}
	doc.Name = name
	sc, err := scenario.FromDocument(doc)
	if err != nil {
		return err
	}
	sc.Name = name
	db.mu.Lock()
	defer db.mu.Unlock()
	db.docs[name] = &Document{Name: name, Source: src, Doc: doc, Scenario: sc, Description: description}
	return nil
}

// Get returns the stored document.
func (db *Database) Get(name string) (*Document, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, ok := db.docs[name]
	return d, ok
}

// Len returns the number of stored documents.
func (db *Database) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.docs)
}

// Names returns stored document names sorted.
func (db *Database) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.docs))
	for n := range db.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Topics builds the catalogue listing for this server.
func (db *Database) Topics(serverName string) []protocol.TopicInfo {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []protocol.TopicInfo
	for _, d := range db.docs {
		out = append(out, protocol.TopicInfo{
			Name:        d.Name,
			Title:       d.Doc.Title,
			Server:      serverName,
			Description: d.Description,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Search scans "all the text documents stored in that server" for the token
// (title, headings, text content and description, case-insensitive) and
// returns only the matching lessons with their server location.
func (db *Database) Search(token, serverName string) []protocol.TopicInfo {
	token = strings.ToLower(strings.TrimSpace(token))
	if token == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []protocol.TopicInfo
	for _, d := range db.docs {
		if documentMatches(d, token) {
			out = append(out, protocol.TopicInfo{
				Name:        d.Name,
				Title:       d.Doc.Title,
				Server:      serverName,
				Description: d.Description,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func documentMatches(d *Document, token string) bool {
	if strings.Contains(strings.ToLower(d.Doc.Title), token) {
		return true
	}
	if strings.Contains(strings.ToLower(d.Description), token) {
		return true
	}
	for _, s := range d.Doc.Sentences {
		if s.Heading != nil && strings.Contains(strings.ToLower(s.Heading.Text), token) {
			return true
		}
	}
	for _, it := range d.Doc.Items() {
		if t, ok := it.(*hml.Text); ok {
			if strings.Contains(strings.ToLower(t.Plain()), token) {
				return true
			}
		}
	}
	return false
}

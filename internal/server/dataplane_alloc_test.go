package server

import (
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// allocHarness stands up a server on the counting sink transport (so the
// measurement sees the emit path itself, not the simulator's event
// scheduling) with one session playing the bench lesson, and returns a
// time-sensitive sender plus the paced-clock handle.
func allocHarness(t *testing.T) (*clock.Virtual, *sender) {
	t.Helper()
	clk := clock.NewSim()
	net := newSinkNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "bench", Password: "pw", Email: "bench@load", Class: qos.Standard,
	}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := db.Put("lesson", hml.LessonSource("bench", 2, time.Minute), "load doc"); err != nil {
		t.Fatal(err)
	}
	srv, err := New("srv", clk, net, users, db, Options{Capacity: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	client := netsim.MakeAddr("load0", 6000)
	net.Send(netsim.Packet{
		From: client, To: netsim.MakeAddr("srv", ControlPort),
		Payload:  protocol.MustEncode(protocol.MsgConnect, protocol.Connect{User: "bench", Password: "pw"}),
		Reliable: true,
	})
	net.Send(netsim.Packet{
		From: client, To: netsim.MakeAddr("srv", ControlPort),
		Payload:  protocol.MustEncode(protocol.MsgDocRequest, protocol.DocRequest{Name: "lesson"}),
		Reliable: true,
	})
	var sn *sender
	sess, unlock := srv.lockedSession(client)
	if sess != nil {
		for _, snd := range sess.senders {
			if snd.stream.Type.TimeSensitive() {
				sn = snd
			}
		}
	}
	unlock()
	if sn == nil {
		t.Fatal("no time-sensitive sender stood up")
	}
	return clk, sn
}

// TestEmitPathAllocFree is the allocation regression gate of the zero-alloc
// data plane: once the scratch buffer has grown and the packet pool is
// primed (testing.AllocsPerRun's warm-up run), emitting a frame — QoS level
// snapshot, payload synthesis, single-pass packet assembly, transport send —
// must not allocate. One allocation of slack is allowed because a GC cycle
// during the measurement may empty the sync.Pool.
func TestEmitPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race; allocation bounds don't hold")
	}
	_, sn := allocHarness(t)
	avg := testing.AllocsPerRun(200, func() {
		sn.mu.Lock()
		sn.emitFrameLocked()
		sn.mu.Unlock()
	})
	if avg > 1 {
		t.Fatalf("emit path allocates %.2f objects/frame; the steady-state "+
			"data plane must be allocation-free (pool refills excepted)", avg)
	}
}

// TestPacedPhaseAllocRegression pins the whole paced pipeline — timer fire,
// re-arm via Reset, frame emit — at (amortized) no more than one allocation
// per frame, using the harness's MemStats accounting. This is the ISSUE's
// acceptance bound and catches regressions the narrow emit-path test cannot,
// such as per-frame timer or closure allocation in the pacing loop.
func TestPacedPhaseAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race; allocation bounds don't hold")
	}
	res, err := RunDataPlaneLoad(DataPlaneConfig{Sessions: 4, FramesPerSender: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacedFrames == 0 {
		t.Fatal("paced phase emitted nothing; the window measured no traffic")
	}
	if res.PacedAllocsPerFrame > 1 {
		t.Fatalf("paced phase allocates %.2f objects/frame over %d frames "+
			"(%.1f B/frame); the pacing loop must stay at ≤ 1",
			res.PacedAllocsPerFrame, res.PacedFrames, res.PacedAllocBytesPerFrame)
	}
}

package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/stats"
)

// The control plane is sharded: session state and the dedup reply caches
// are split across ctrlShards address-hashed shards, each behind its own
// instrumented lock, so a connect storm on one slice of the address space
// never serializes with heartbeats or RTCP feedback on another. A session
// lives in the shard of its *current* client address; the rare cross-shard
// operation is a reattach that moves a session between addresses.
//
// Lock order (see also the sender.go data-plane note):
//
//	shard.mu → shard.dmu   (same shard; never dmu → any mu)
//	shard.mu → sn.mu       (control handlers may call sender methods)
//	shard.mu(i) → shard.mu(j) only with i < j (cross-shard reattach)
//
// Leaf locks (adm, users, qos managers, searchMu, annMu, peersMu) never
// call back into shard state, so they may be taken under a shard lock.

// ctrlShards is the number of control-plane shards; a power of two so the
// address hash reduces with a mask.
const ctrlShards = 16

// shardIndex hashes a client control address (FNV-1a) onto a shard.
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (ctrlShards - 1))
}

// lockMeter is one shard's control-plane mutex, instrumented so the
// data-plane benchmark can prove the per-frame emit path never touches it:
// it counts acquisitions, accumulates wall-clock hold time, and (when the
// server has a telemetry scope) feeds a per-shard wait histogram so lock
// contention shows up as a distribution, not just a total. The few time.Now
// calls per acquisition cost tens of nanoseconds on control-plane
// operations that each do map work and I/O — negligible — and buy a direct
// measurement of control-lock pressure. Read-side acquisitions are
// unmetered: they exist precisely so read-only accessors can be served
// without polluting the meter.
type lockMeter struct {
	mu       sync.RWMutex
	acqs     atomic.Int64
	heldNS   atomic.Int64
	lockedAt time.Time // guarded by mu: written after Lock, read before Unlock
	// hWait observes the wall time each Lock spent waiting. Set once at
	// Server.New (a shared no-op when telemetry is off), before any
	// concurrent use, so reads need no synchronization.
	hWait *stats.DurationHistogram
}

// Lock acquires the shard lock for writing.
func (m *lockMeter) Lock() {
	t0 := time.Now()
	m.mu.Lock()
	m.acqs.Add(1)
	now := time.Now()
	if m.hWait != nil {
		m.hWait.Observe(now.Sub(t0))
	}
	m.lockedAt = now
}

// Unlock releases the shard lock, accounting the hold.
func (m *lockMeter) Unlock() {
	m.heldNS.Add(int64(time.Since(m.lockedAt)))
	m.mu.Unlock()
}

// RLock acquires the shard lock for reading, without touching the meter.
func (m *lockMeter) RLock() { m.mu.RLock() }

// RUnlock releases a read acquisition.
func (m *lockMeter) RUnlock() { m.mu.RUnlock() }

// Stats returns the write-acquisition count and cumulative hold time.
func (m *lockMeter) Stats() (acqs int64, held time.Duration) {
	return m.acqs.Load(), time.Duration(m.heldNS.Load())
}

// ctrlShard is one slice of the control plane: the sessions whose client
// address hashes here, the resume-token and session-ID indexes of those
// sessions, their liveness timer wheel, the pending RTCP renegotiation
// batch, and the dedup reply caches of the addresses that hash here.
type ctrlShard struct {
	mu       lockMeter
	sessions map[string]*session // keyed by client control address
	byToken  map[string]*session
	byID     map[string]*session // keyed by session ID, for ResumeSession recovery
	// live is the liveness timer wheel: every heartbeat-capable session is
	// keyed on its next liveness deadline, so one sweep tick visits only
	// the sessions due now, not every resident session. liveOn tracks
	// whether the tick timer is armed; it arms lazily on the first
	// heartbeat and disarms when the wheel empties, so sessions driven by
	// raw packets (tests, old clients) are never liveness-policed and an
	// idle server's virtual clock drains.
	live   *wheel[*session]
	liveOn bool
	// reneg is the batch of sessions whose RTCP feedback changed their
	// stream mix's rate since the last renegotiation tick; the tick
	// renegotiates each once, instead of once per feedback packet.
	reneg   []*session
	renegOn bool

	// dedup caches, per client control address, the replies to recently
	// handled request IDs so retransmitted requests are answered
	// idempotently instead of re-running their side effects. It has its
	// own lock so replies can be cached while handlers hold mu (lock
	// order mu → dmu; never the reverse). Rings for clients that never
	// obtained a session (auth/admission rejects) sit on the rings TTL
	// wheel so a reject storm cannot grow the map without bound; rings of
	// live or suspended sessions leave the wheel and are deleted with the
	// session instead.
	dmu     sync.Mutex
	dedup   map[string]*dedupRing
	rings   *wheel[*dedupRing]
	ringsOn bool
}

// shardOf returns the shard owning a client address.
func (s *Server) shardOf(addr string) *ctrlShard { return &s.shards[shardIndex(addr)] }

// lockSession write-locks the shard currently holding sess and returns it.
// A session's shard can change under a cross-shard reattach, but the mover
// holds both shard locks while updating sess.shard, so once the loop holds
// the shard it re-read, the session can no longer move.
func (s *Server) lockSession(sess *session) (*ctrlShard, int) {
	for {
		si := int(sess.shard.Load())
		sh := &s.shards[si]
		sh.mu.Lock()
		if int(sess.shard.Load()) == si {
			return sh, si
		}
		sh.mu.Unlock()
	}
}

// lockPair write-locks shards oi and ni in ascending index order (a single
// acquisition when equal); unlockPair is its inverse.
func (s *Server) lockPair(oi, ni int) {
	lo, hi := oi, ni
	if lo > hi {
		lo, hi = hi, lo
	}
	s.shards[lo].mu.Lock()
	if hi != lo {
		s.shards[hi].mu.Lock()
	}
}

func (s *Server) unlockPair(oi, ni int) {
	lo, hi := oi, ni
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi != lo {
		s.shards[hi].mu.Unlock()
	}
	s.shards[lo].mu.Unlock()
}

// claimSessionFor locates the session pick selects (scanning shards — the
// resume paths are rare), then locks its shard together with the shard that
// owns the new client address, in ascending index order, and revalidates.
// On success both shard locks are held (one when they coincide) and the
// owning and target shard indexes are returned; the caller must unlockPair.
// When the session cannot be (re)found, sess is nil and nothing is held.
func (s *Server) claimSessionFor(from netsim.Addr, pick func(*ctrlShard) *session) (sess *session, oi, ni int) {
	ni = shardIndex(string(from))
	for attempt := 0; attempt < 4; attempt++ {
		oi = -1
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			found := pick(sh) != nil
			sh.mu.Unlock()
			if found {
				oi = i
				break
			}
		}
		if oi < 0 {
			return nil, -1, ni
		}
		s.lockPair(oi, ni)
		if sess = pick(&s.shards[oi]); sess != nil {
			return sess, oi, ni
		}
		// The session moved or expired between the scan and the lock;
		// rescan.
		s.unlockPair(oi, ni)
	}
	return nil, -1, ni
}

// LockStats reports how many times the control-plane shard locks have been
// write-acquired and their cumulative wall-clock hold time, summed across
// shards. The data-plane benchmark samples it around the emit phase to
// prove media pacing runs entirely off the control plane.
func (s *Server) LockStats() (acqs int64, held time.Duration) {
	for i := range s.shards {
		a, h := s.shards[i].mu.Stats()
		acqs += a
		held += h
	}
	return acqs, held
}

// LockWaitHist merges the per-shard lock-wait histograms into one fresh
// distribution, so harnesses can report wait quantiles across the whole
// control plane. Nil when the server has no telemetry scope.
func (s *Server) LockWaitHist() *stats.DurationHistogram {
	if !s.opts.Obs.Enabled() {
		return nil
	}
	merged := stats.NewDurationHistogram(stats.MicroLatencyBounds()...)
	for i := range s.shards {
		if h := s.shards[i].mu.hWait; h != nil {
			h.AddTo(merged)
		}
	}
	return merged
}

// Sessions returns the number of live sessions. Served from a counter the
// mutating paths maintain, so monitoring never touches the metered locks.
func (s *Server) Sessions() int { return int(s.sessionCount.Load()) }

// QoSManager returns the grading manager of the session attached to the
// given client address (nil when unknown); used by experiments to inspect
// quality trajectories. Read-only: it takes the shard's unmetered read
// side, so polling it during a benchmark does not pollute the lock meter.
func (s *Server) QoSManager(client netsim.Addr) *qos.Manager {
	sh := s.shardOf(string(client))
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sess, ok := sh.sessions[string(client)]; ok {
		return sess.qosMgr
	}
	return nil
}

// dedupCap bounds the per-client reply cache.
const dedupCap = 64

// dedupTTL is how long a reply cache for a client without a session is kept
// after its last use. Clients whose connect was rejected (bad credentials,
// admission refusal) get a ring but never a session, so only the TTL wheel
// frees them; rings of live or suspended sessions are exempt and are
// deleted with the session instead.
const dedupTTL = 2 * time.Minute

// dedupRing is a bounded per-client cache of request IDs and their encoded
// replies. A nil frame marks a request still being handled (in flight):
// its duplicates are dropped silently rather than re-executed.
type dedupRing struct {
	addr     string
	entries  map[uint32][]byte
	order    []uint32
	lastUsed time.Time
	pos      wheelPos // position on the shard's rings TTL wheel
}

// get returns the cached reply frame and whether the request ID was seen.
func (r *dedupRing) get(reqID uint32) ([]byte, bool) {
	frame, seen := r.entries[reqID]
	return frame, seen
}

// put records (or completes) a request ID, evicting the oldest when full.
func (r *dedupRing) put(reqID uint32, frame []byte) {
	if _, seen := r.entries[reqID]; !seen {
		if len(r.order) >= dedupCap {
			delete(r.entries, r.order[0])
			r.order = r.order[1:]
		}
		r.order = append(r.order, reqID)
	}
	r.entries[reqID] = frame
}

// dedupRingLocked returns the client's reply cache on the shard owning it,
// refreshing its TTL position and lazily arming the shard's ring sweep;
// caller holds sh.dmu.
func (s *Server) dedupRingLocked(sh *ctrlShard, si int, client string) *dedupRing {
	ring, ok := sh.dedup[client]
	if !ok {
		ring = &dedupRing{addr: client, entries: map[uint32][]byte{}, pos: noWheelPos()}
		sh.dedup[client] = ring
	}
	ring.lastUsed = s.clk.Now()
	// (Re)key the ring on its expiry. Session-backed rings get dropped at
	// their first fire (and deleted with the session), so the wheel — and
	// with it the tick timer — drains on an idle server even while live
	// sessions keep rings resident.
	sh.rings.schedule(ring, ring.lastUsed.Add(dedupTTL))
	if !sh.ringsOn {
		sh.ringsOn = true
		s.clk.AfterFunc(sh.rings.gran, func() { s.dedupTick(si) })
	}
	return ring
}

// dedupLen counts resident reply caches across all shards (tests and the
// control-plane harness).
func (s *Server) dedupLen() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.dmu.Lock()
		n += len(sh.dedup)
		sh.dmu.Unlock()
	}
	return n
}

package server

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// This file is the data-plane load harness: it stands up one server with N
// sessions playing a multi-stream document and measures the media emit path
// in two phases. The paced phase drives the virtual clock so every sender
// fires on its flow-scenario timer, and samples the control-plane lock
// meters (summed across shards) across the window to prove per-frame
// emission never touches a shard's write lock. The
// pump phase drives each sender back-to-back from its own goroutine against
// a counting sink transport, measuring genuine parallel throughput and the
// per-frame emit service time whose tail is the pacing-jitter bound: a frame
// cannot leave more than one service time late because of lock contention.

// DataPlaneConfig sizes one load run.
type DataPlaneConfig struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// FramesPerSender bounds the pump phase's frames per time-sensitive
	// sender.
	FramesPerSender int
	// PacedWindow is how much virtual time the paced phase advances. Keep
	// it under the 5 s RTCP sender-report period so the window contains
	// nothing but media pacing.
	PacedWindow time.Duration
	// DisableObs runs without a telemetry scope (and thus without frame
	// spans); the overhead benchmark pairs a run against a default run to
	// price the sampled span instrumentation.
	DisableObs bool
	// SharedFlows turns on shared-flow fan-out: sessions viewing the same
	// document ride one paced flow (one encode, N deliveries).
	SharedFlows bool
	// Docs is how many distinct documents the sessions spread across
	// (default 1: every session views the same hot document).
	Docs int
	// ZipfS is the Zipf popularity exponent used to assign sessions to
	// documents when Docs > 1. The assignment is a deterministic
	// inverse-CDF spread — session i lands on the document whose
	// cumulative weight covers (i+0.5)/Sessions — so runs are exactly
	// reproducible with no RNG. Zero means uniform popularity.
	ZipfS float64
}

func (c *DataPlaneConfig) fill() {
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.FramesPerSender <= 0 {
		c.FramesPerSender = 200
	}
	if c.PacedWindow <= 0 || c.PacedWindow >= 5*time.Second {
		c.PacedWindow = 4 * time.Second
	}
	if c.Docs <= 0 {
		c.Docs = 1
	}
}

// DataPlaneResult is one load run's measurement, JSON-shaped for
// BENCH_dataplane.json.
type DataPlaneResult struct {
	Sessions int `json:"sessions"`
	Senders  int `json:"senders"`

	// Paced phase: virtual-clock pacing over PacedWindow.
	PacedFrames   int64 `json:"paced_frames"`
	PacedLockAcqs int64 `json:"paced_lock_acqs"` // shard write-lock acquisitions during pacing; must be 0

	// Allocation footprint (runtime.MemStats deltas over each phase divided
	// by its frames). The steady-state emit path is pooled and append-style,
	// so the paced numbers must stay at (amortized) zero — the regression
	// test pins them.
	PacedAllocsPerFrame     float64 `json:"paced_allocs_per_frame"`
	PacedAllocBytesPerFrame float64 `json:"paced_alloc_bytes_per_frame"`
	PumpAllocsPerFrame      float64 `json:"pump_allocs_per_frame"`
	PumpAllocBytesPerFrame  float64 `json:"pump_alloc_bytes_per_frame"`

	// Pump phase: parallel full-rate emission, one goroutine per sender.
	PumpFrames    int64   `json:"pump_frames"`
	PumpPackets   int64   `json:"pump_packets"`
	PumpBytes     int64   `json:"pump_bytes"`
	ElapsedMicros int64   `json:"elapsed_us"`
	FramesPerSec  float64 `json:"frames_per_sec"`

	// Emit service time distribution (µs). The p95 is the send-jitter
	// bound: no frame can start later than one service time behind its
	// timer because of another stream's lock.
	EmitP50Micros float64 `json:"emit_p50_us"`
	EmitP95Micros float64 `json:"emit_p95_us"`
	EmitMaxMicros float64 `json:"emit_max_us"`

	// Whole-run control-plane lock pressure.
	LockAcqsTotal  int64 `json:"lock_acqs_total"`
	LockHeldMicros int64 `json:"lock_held_us"`

	// Frame-span emit→wire hop (µs), from the 1-in-SpanSampleEvery sampled
	// frames. Zero when DisableObs.
	SpanSampleEvery int     `json:"span_sample_every"`
	SpanFrames      int64   `json:"span_frames"`
	EmitToWireP50   float64 `json:"emit_to_wire_p50_us"`
	EmitToWireP95   float64 `json:"emit_to_wire_p95_us"`
	EmitToWireP99   float64 `json:"emit_to_wire_p99_us"`
	EmitToWireMax   float64 `json:"emit_to_wire_max_us"`

	// Shared-flow fan-out. Encodes count frames encoded+assembled once;
	// delivered counts frames × subscribers actually fanned out. Both are
	// restricted to the time-sensitive (audio/video) streams — the
	// sustained data plane — so still-image page loads don't blur the
	// one-encode-N-deliveries ratio. Without shared flows the two are
	// equal; with them, encodes stay flat as viewers of the same document
	// grow while delivered scales with the viewer count.
	SharedFlows        bool    `json:"shared_flows"`
	Docs               int     `json:"docs"`
	ZipfS              float64 `json:"zipf_s"`
	Flows              int     `json:"flows"`
	MaxFlowSubscribers int     `json:"max_flow_subscribers"`
	PacedEncodes       int64   `json:"paced_encodes"`
	PacedDelivered     int64   `json:"paced_delivered"`
	PumpEncodes        int64   `json:"pump_encodes"`
	PumpDelivered      int64   `json:"pump_delivered"`
	EncodesPerSec      float64 `json:"encodes_per_sec"`
	DeliveredPerSec    float64 `json:"delivered_per_sec"`
}

// sinkNet is the harness transport: a netsim.Net whose Send costs two atomic
// adds. Packets addressed to a registered listener (the server's control
// port) are delivered synchronously; everything else — the media flood — is
// only counted, so the measurement isolates the server's emit path from any
// simulated network behavior.
type sinkNet struct {
	mu       sync.RWMutex
	handlers map[netsim.Addr]netsim.Handler
	packets  atomic.Int64
	bytes    atomic.Int64
}

func newSinkNet() *sinkNet {
	return &sinkNet{handlers: map[netsim.Addr]netsim.Handler{}}
}

func (n *sinkNet) Listen(a netsim.Addr, h netsim.Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, a)
	} else {
		n.handlers[a] = h
	}
	return nil
}

func (n *sinkNet) Send(p netsim.Packet) error {
	n.packets.Add(1)
	n.bytes.Add(int64(len(p.Payload)))
	n.mu.RLock()
	h := n.handlers[p.To]
	n.mu.RUnlock()
	if h != nil {
		h(p)
	}
	return nil
}

// SendMulti implements netsim.MultiSender so the shared-flow fan-out path is
// exercised end to end: the packet is assembled once and each destination
// costs only the counting here — no per-destination copy, no allocation.
func (n *sinkNet) SendMulti(p netsim.Packet, tos []netsim.Addr) error {
	n.packets.Add(int64(len(tos)))
	n.bytes.Add(int64(len(p.Payload)) * int64(len(tos)))
	return nil
}

// RunDataPlaneLoad stands up a server with cfg.Sessions sessions playing a
// two-slide lesson (per slide: one still image plus a synchronized audio and
// video pair, so every session carries multiple concurrent streams) and
// measures the data plane as described above.
func RunDataPlaneLoad(cfg DataPlaneConfig) (DataPlaneResult, error) {
	cfg.fill()
	var res DataPlaneResult
	res.Sessions = cfg.Sessions
	res.SharedFlows = cfg.SharedFlows
	res.Docs = cfg.Docs
	res.ZipfS = cfg.ZipfS

	clk := clock.NewSim()
	net := newSinkNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "bench", Password: "pw", Email: "bench@load", Class: qos.Standard,
	}, clk.Now()); err != nil {
		return res, err
	}
	db := NewDatabase()
	docName := func(k int) string {
		if cfg.Docs == 1 {
			return "lesson"
		}
		return fmt.Sprintf("lesson%d", k)
	}
	for k := 0; k < cfg.Docs; k++ {
		if err := db.Put(docName(k), hml.LessonSource("bench", 2, time.Minute), "load doc"); err != nil {
			return res, err
		}
	}
	// Zipf popularity: document k gets weight (k+1)^-s; session i lands on
	// the document whose cumulative weight first covers (i+0.5)/Sessions.
	// Deterministic inverse-CDF spread — no RNG, exactly reproducible.
	docOf := make([]int, cfg.Sessions)
	if cfg.Docs > 1 {
		weights := make([]float64, cfg.Docs)
		var total float64
		for k := range weights {
			weights[k] = math.Pow(float64(k+1), -cfg.ZipfS)
			total += weights[k]
		}
		for i := range docOf {
			u := (float64(i) + 0.5) / float64(cfg.Sessions) * total
			acc := 0.0
			docOf[i] = cfg.Docs - 1
			for k, w := range weights {
				acc += w
				if u <= acc {
					docOf[i] = k
					break
				}
			}
		}
	}
	// Telemetry is ON by default: the alloc and lock gates below prove the
	// sampled span instrumentation rides the emit path for free.
	var scope *obs.Scope
	if !cfg.DisableObs {
		scope = obs.NewScope(clk)
	}
	srv, err := New("srv", clk, net, users, db, Options{
		Capacity:    1e12, // admission must not cap the fleet
		Obs:         scope,
		SharedFlows: cfg.SharedFlows,
	})
	if err != nil {
		return res, err
	}

	// Stand up the sessions through the real control plane.
	for i := 0; i < cfg.Sessions; i++ {
		client := netsim.MakeAddr(fmt.Sprintf("load%d", i), 6000)
		net.Send(netsim.Packet{
			From: client, To: netsim.MakeAddr("srv", ControlPort),
			Payload:  protocol.MustEncode(protocol.MsgConnect, protocol.Connect{User: "bench", Password: "pw"}),
			Reliable: true,
		})
		net.Send(netsim.Packet{
			From: client, To: netsim.MakeAddr("srv", ControlPort),
			Payload:  protocol.MustEncode(protocol.MsgDocRequest, protocol.DocRequest{Name: docName(docOf[i])}),
			Reliable: true,
		})
	}
	if got := srv.Sessions(); got != cfg.Sessions {
		return res, fmt.Errorf("dataplane: %d sessions stood up, want %d", got, cfg.Sessions)
	}

	// Collect the senders. Time-sensitive ones are the sustained load; the
	// stills finish after their single frame.
	var all, ts []*sender
	for i := range srv.shards {
		sh := &srv.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			for _, snd := range sess.senders {
				all = append(all, snd)
				if snd.stream.Type.TimeSensitive() {
					ts = append(ts, snd)
				}
			}
		}
		sh.mu.Unlock()
	}
	res.Senders = len(all)

	// Collect the shared flows the document requests stood up. With shared
	// flows off (or every session on its own document) this is empty and
	// every sender paces privately.
	var flows []*sharedFlow
	srv.flows.mu.Lock()
	for _, fl := range srv.flows.flows {
		flows = append(flows, fl)
	}
	srv.flows.mu.Unlock()
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].key.doc != flows[j].key.doc {
			return flows[i].key.doc < flows[j].key.doc
		}
		return flows[i].key.stream < flows[j].key.stream
	})
	res.Flows = len(flows)
	for _, fl := range flows {
		fl.mu.Lock()
		if n := len(fl.subs); n > res.MaxFlowSubscribers {
			res.MaxFlowSubscribers = n
		}
		fl.mu.Unlock()
	}

	sumStats := func() (frames, packets int64, bytes int64) {
		for _, snd := range all {
			st := snd.stats()
			frames += int64(st.frames)
			packets += int64(st.packets)
			bytes += st.bytes
		}
		return
	}
	// sumEncodes counts time-sensitive frames encoded+assembled: one per
	// flow frame regardless of subscriber count, plus each private
	// time-sensitive sender's own frames. sumDelivered counts the same
	// frames once per subscriber actually fanned (a shared sender's stats
	// delegate to its flow-share). Equal when nothing is shared.
	sumEncodes := func() int64 {
		var e int64
		for _, fl := range flows {
			fl.mu.Lock()
			e += int64(fl.framesSent)
			fl.mu.Unlock()
		}
		for _, snd := range ts {
			if !snd.isShared() {
				e += int64(snd.stats().frames)
			}
		}
		return e
	}
	sumDelivered := func() int64 {
		var d int64
		for _, snd := range ts {
			d += int64(snd.stats().frames)
		}
		return d
	}

	// memDelta samples the process-wide allocation counters around fn. The
	// harness is the only thing running, so the delta is the phase's own
	// footprint (plus the constant cost of the sampling itself, amortized
	// over thousands of frames).
	memDelta := func(fn func()) (mallocs, bytes int64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc)
	}

	// Paced phase: advance the virtual clock and let the flow-scenario
	// timers emit. Everything that fires in this window is a sender timer,
	// so the lock-meter delta is exactly the emit path's shard-lock footprint —
	// and the allocation delta is the pacing loop's footprint.
	preFrames, _, _ := sumStats()
	preEncodes, preDelivered := sumEncodes(), sumDelivered()
	preAcqs, _ := srv.LockStats()
	pacedMallocs, pacedBytes := memDelta(func() { clk.Advance(cfg.PacedWindow) })
	postAcqs, _ := srv.LockStats()
	pacedFrames, _, _ := sumStats()
	res.PacedFrames = pacedFrames - preFrames
	res.PacedLockAcqs = postAcqs - preAcqs
	res.PacedEncodes = sumEncodes() - preEncodes
	res.PacedDelivered = sumDelivered() - preDelivered
	if res.PacedFrames > 0 {
		// PacedFrames already counts per-subscriber deliveries (a shared
		// sender's stats are its flow-share), so this IS allocations per
		// delivered frame — the fan-out gate divides the one shared
		// assembly across every subscriber it reached.
		res.PacedAllocsPerFrame = float64(pacedMallocs) / float64(res.PacedFrames)
		res.PacedAllocBytesPerFrame = float64(pacedBytes) / float64(res.PacedFrames)
	}

	// Pump phase: every pacing unit emits back-to-back from its own
	// goroutine. A shared flow pumps once for all of its subscribers —
	// that's the point — so the units are the flows plus every private
	// sender.
	type pumper interface{ pump(int) []time.Duration }
	var units []pumper
	for _, fl := range flows {
		units = append(units, fl)
	}
	for _, snd := range all {
		if !snd.isShared() {
			units = append(units, snd)
		}
	}
	pumpStartFrames, pumpStartPackets, pumpStartBytes := sumStats()
	pumpStartEncodes, pumpStartDelivered := sumEncodes(), sumDelivered()
	times := make([][]time.Duration, len(units))
	var wg sync.WaitGroup
	var elapsed time.Duration
	pumpMallocs, pumpAllocBytes := memDelta(func() {
		t0 := time.Now()
		for i, u := range units {
			wg.Add(1)
			go func(i int, u pumper) {
				defer wg.Done()
				times[i] = u.pump(cfg.FramesPerSender)
			}(i, u)
		}
		wg.Wait()
		elapsed = time.Since(t0)
	})
	pumpFrames, pumpPackets, pumpBytes := sumStats()
	res.PumpFrames = pumpFrames - pumpStartFrames
	res.PumpPackets = pumpPackets - pumpStartPackets
	res.PumpBytes = pumpBytes - pumpStartBytes
	res.PumpEncodes = sumEncodes() - pumpStartEncodes
	res.PumpDelivered = sumDelivered() - pumpStartDelivered
	res.ElapsedMicros = elapsed.Microseconds()
	if elapsed > 0 {
		res.FramesPerSec = float64(res.PumpFrames) / elapsed.Seconds()
		res.EncodesPerSec = float64(res.PumpEncodes) / elapsed.Seconds()
		res.DeliveredPerSec = float64(res.PumpDelivered) / elapsed.Seconds()
	}
	if res.PumpFrames > 0 {
		res.PumpAllocsPerFrame = float64(pumpMallocs) / float64(res.PumpFrames)
		res.PumpAllocBytesPerFrame = float64(pumpAllocBytes) / float64(res.PumpFrames)
	}

	var flat []time.Duration
	for _, ts := range times {
		flat = append(flat, ts...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	if n := len(flat); n > 0 {
		res.EmitP50Micros = us(flat[n/2])
		res.EmitP95Micros = us(flat[n*95/100])
		res.EmitMaxMicros = us(flat[n-1])
	}

	acqs, held := srv.LockStats()
	res.LockAcqsTotal = acqs
	res.LockHeldMicros = held.Microseconds()

	if scope != nil {
		h := scope.FrameSpans().EmitToWire()
		res.SpanSampleEvery = int(scope.FrameSpans().SampleEvery())
		res.SpanFrames = h.N()
		res.EmitToWireP50 = us(h.P50())
		res.EmitToWireP95 = us(h.P95())
		res.EmitToWireP99 = us(h.P99())
		res.EmitToWireMax = us(h.Max())
	}
	return res, nil
}

package server

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/hml"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
)

// This file is the data-plane load harness: it stands up one server with N
// sessions playing a multi-stream document and measures the media emit path
// in two phases. The paced phase drives the virtual clock so every sender
// fires on its flow-scenario timer, and samples the control-plane lock
// meters (summed across shards) across the window to prove per-frame
// emission never touches a shard's write lock. The
// pump phase drives each sender back-to-back from its own goroutine against
// a counting sink transport, measuring genuine parallel throughput and the
// per-frame emit service time whose tail is the pacing-jitter bound: a frame
// cannot leave more than one service time late because of lock contention.

// DataPlaneConfig sizes one load run.
type DataPlaneConfig struct {
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// FramesPerSender bounds the pump phase's frames per time-sensitive
	// sender.
	FramesPerSender int
	// PacedWindow is how much virtual time the paced phase advances. Keep
	// it under the 5 s RTCP sender-report period so the window contains
	// nothing but media pacing.
	PacedWindow time.Duration
	// DisableObs runs without a telemetry scope (and thus without frame
	// spans); the overhead benchmark pairs a run against a default run to
	// price the sampled span instrumentation.
	DisableObs bool
}

func (c *DataPlaneConfig) fill() {
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.FramesPerSender <= 0 {
		c.FramesPerSender = 200
	}
	if c.PacedWindow <= 0 || c.PacedWindow >= 5*time.Second {
		c.PacedWindow = 4 * time.Second
	}
}

// DataPlaneResult is one load run's measurement, JSON-shaped for
// BENCH_dataplane.json.
type DataPlaneResult struct {
	Sessions int `json:"sessions"`
	Senders  int `json:"senders"`

	// Paced phase: virtual-clock pacing over PacedWindow.
	PacedFrames   int64 `json:"paced_frames"`
	PacedLockAcqs int64 `json:"paced_lock_acqs"` // shard write-lock acquisitions during pacing; must be 0

	// Allocation footprint (runtime.MemStats deltas over each phase divided
	// by its frames). The steady-state emit path is pooled and append-style,
	// so the paced numbers must stay at (amortized) zero — the regression
	// test pins them.
	PacedAllocsPerFrame     float64 `json:"paced_allocs_per_frame"`
	PacedAllocBytesPerFrame float64 `json:"paced_alloc_bytes_per_frame"`
	PumpAllocsPerFrame      float64 `json:"pump_allocs_per_frame"`
	PumpAllocBytesPerFrame  float64 `json:"pump_alloc_bytes_per_frame"`

	// Pump phase: parallel full-rate emission, one goroutine per sender.
	PumpFrames    int64   `json:"pump_frames"`
	PumpPackets   int64   `json:"pump_packets"`
	PumpBytes     int64   `json:"pump_bytes"`
	ElapsedMicros int64   `json:"elapsed_us"`
	FramesPerSec  float64 `json:"frames_per_sec"`

	// Emit service time distribution (µs). The p95 is the send-jitter
	// bound: no frame can start later than one service time behind its
	// timer because of another stream's lock.
	EmitP50Micros float64 `json:"emit_p50_us"`
	EmitP95Micros float64 `json:"emit_p95_us"`
	EmitMaxMicros float64 `json:"emit_max_us"`

	// Whole-run control-plane lock pressure.
	LockAcqsTotal  int64 `json:"lock_acqs_total"`
	LockHeldMicros int64 `json:"lock_held_us"`

	// Frame-span emit→wire hop (µs), from the 1-in-SpanSampleEvery sampled
	// frames. Zero when DisableObs.
	SpanSampleEvery int     `json:"span_sample_every"`
	SpanFrames      int64   `json:"span_frames"`
	EmitToWireP50   float64 `json:"emit_to_wire_p50_us"`
	EmitToWireP95   float64 `json:"emit_to_wire_p95_us"`
	EmitToWireP99   float64 `json:"emit_to_wire_p99_us"`
	EmitToWireMax   float64 `json:"emit_to_wire_max_us"`
}

// sinkNet is the harness transport: a netsim.Net whose Send costs two atomic
// adds. Packets addressed to a registered listener (the server's control
// port) are delivered synchronously; everything else — the media flood — is
// only counted, so the measurement isolates the server's emit path from any
// simulated network behavior.
type sinkNet struct {
	mu       sync.RWMutex
	handlers map[netsim.Addr]netsim.Handler
	packets  atomic.Int64
	bytes    atomic.Int64
}

func newSinkNet() *sinkNet {
	return &sinkNet{handlers: map[netsim.Addr]netsim.Handler{}}
}

func (n *sinkNet) Listen(a netsim.Addr, h netsim.Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, a)
	} else {
		n.handlers[a] = h
	}
	return nil
}

func (n *sinkNet) Send(p netsim.Packet) error {
	n.packets.Add(1)
	n.bytes.Add(int64(len(p.Payload)))
	n.mu.RLock()
	h := n.handlers[p.To]
	n.mu.RUnlock()
	if h != nil {
		h(p)
	}
	return nil
}

// RunDataPlaneLoad stands up a server with cfg.Sessions sessions playing a
// two-slide lesson (per slide: one still image plus a synchronized audio and
// video pair, so every session carries multiple concurrent streams) and
// measures the data plane as described above.
func RunDataPlaneLoad(cfg DataPlaneConfig) (DataPlaneResult, error) {
	cfg.fill()
	var res DataPlaneResult
	res.Sessions = cfg.Sessions

	clk := clock.NewSim()
	net := newSinkNet()
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "bench", Password: "pw", Email: "bench@load", Class: qos.Standard,
	}, clk.Now()); err != nil {
		return res, err
	}
	db := NewDatabase()
	if err := db.Put("lesson", hml.LessonSource("bench", 2, time.Minute), "load doc"); err != nil {
		return res, err
	}
	// Telemetry is ON by default: the alloc and lock gates below prove the
	// sampled span instrumentation rides the emit path for free.
	var scope *obs.Scope
	if !cfg.DisableObs {
		scope = obs.NewScope(clk)
	}
	srv, err := New("srv", clk, net, users, db, Options{
		Capacity: 1e12, // admission must not cap the fleet
		Obs:      scope,
	})
	if err != nil {
		return res, err
	}

	// Stand up the sessions through the real control plane.
	for i := 0; i < cfg.Sessions; i++ {
		client := netsim.MakeAddr(fmt.Sprintf("load%d", i), 6000)
		net.Send(netsim.Packet{
			From: client, To: netsim.MakeAddr("srv", ControlPort),
			Payload:  protocol.MustEncode(protocol.MsgConnect, protocol.Connect{User: "bench", Password: "pw"}),
			Reliable: true,
		})
		net.Send(netsim.Packet{
			From: client, To: netsim.MakeAddr("srv", ControlPort),
			Payload:  protocol.MustEncode(protocol.MsgDocRequest, protocol.DocRequest{Name: "lesson"}),
			Reliable: true,
		})
	}
	if got := srv.Sessions(); got != cfg.Sessions {
		return res, fmt.Errorf("dataplane: %d sessions stood up, want %d", got, cfg.Sessions)
	}

	// Collect the senders. Time-sensitive ones are the sustained load; the
	// stills finish after their single frame.
	var all []*sender
	for i := range srv.shards {
		sh := &srv.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			for _, snd := range sess.senders {
				all = append(all, snd)
			}
		}
		sh.mu.Unlock()
	}
	res.Senders = len(all)

	sumStats := func() (frames, packets int64, bytes int64) {
		for _, snd := range all {
			st := snd.stats()
			frames += int64(st.frames)
			packets += int64(st.packets)
			bytes += st.bytes
		}
		return
	}

	// memDelta samples the process-wide allocation counters around fn. The
	// harness is the only thing running, so the delta is the phase's own
	// footprint (plus the constant cost of the sampling itself, amortized
	// over thousands of frames).
	memDelta := func(fn func()) (mallocs, bytes int64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return int64(after.Mallocs - before.Mallocs), int64(after.TotalAlloc - before.TotalAlloc)
	}

	// Paced phase: advance the virtual clock and let the flow-scenario
	// timers emit. Everything that fires in this window is a sender timer,
	// so the lock-meter delta is exactly the emit path's shard-lock footprint —
	// and the allocation delta is the pacing loop's footprint.
	preFrames, _, _ := sumStats()
	preAcqs, _ := srv.LockStats()
	pacedMallocs, pacedBytes := memDelta(func() { clk.Advance(cfg.PacedWindow) })
	postAcqs, _ := srv.LockStats()
	pacedFrames, _, _ := sumStats()
	res.PacedFrames = pacedFrames - preFrames
	res.PacedLockAcqs = postAcqs - preAcqs
	if res.PacedFrames > 0 {
		res.PacedAllocsPerFrame = float64(pacedMallocs) / float64(res.PacedFrames)
		res.PacedAllocBytesPerFrame = float64(pacedBytes) / float64(res.PacedFrames)
	}

	// Pump phase: every sender emits back-to-back from its own goroutine.
	pumpStartFrames, pumpStartPackets, pumpStartBytes := sumStats()
	times := make([][]time.Duration, len(all))
	var wg sync.WaitGroup
	var elapsed time.Duration
	pumpMallocs, pumpAllocBytes := memDelta(func() {
		t0 := time.Now()
		for i, snd := range all {
			wg.Add(1)
			go func(i int, snd *sender) {
				defer wg.Done()
				times[i] = snd.pump(cfg.FramesPerSender)
			}(i, snd)
		}
		wg.Wait()
		elapsed = time.Since(t0)
	})
	pumpFrames, pumpPackets, pumpBytes := sumStats()
	res.PumpFrames = pumpFrames - pumpStartFrames
	res.PumpPackets = pumpPackets - pumpStartPackets
	res.PumpBytes = pumpBytes - pumpStartBytes
	res.ElapsedMicros = elapsed.Microseconds()
	if elapsed > 0 {
		res.FramesPerSec = float64(res.PumpFrames) / elapsed.Seconds()
	}
	if res.PumpFrames > 0 {
		res.PumpAllocsPerFrame = float64(pumpMallocs) / float64(res.PumpFrames)
		res.PumpAllocBytesPerFrame = float64(pumpAllocBytes) / float64(res.PumpFrames)
	}

	var flat []time.Duration
	for _, ts := range times {
		flat = append(flat, ts...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	if n := len(flat); n > 0 {
		res.EmitP50Micros = us(flat[n/2])
		res.EmitP95Micros = us(flat[n*95/100])
		res.EmitMaxMicros = us(flat[n-1])
	}

	acqs, held := srv.LockStats()
	res.LockAcqsTotal = acqs
	res.LockHeldMicros = held.Microseconds()

	if scope != nil {
		h := scope.FrameSpans().EmitToWire()
		res.SpanSampleEvery = int(scope.FrameSpans().SampleEvery())
		res.SpanFrames = h.N()
		res.EmitToWireP50 = us(h.P50())
		res.EmitToWireP95 = us(h.P95())
		res.EmitToWireP99 = us(h.P99())
		res.EmitToWireMax = us(h.Max())
	}
	return res, nil
}

// Package buffer implements the client-side buffering layer of the paper: a
// "multiple thread queue" with one thread (Buffer) per established media
// connection, each sized by its media time window, with occupancy watermarks
// driving the short-term synchronization actions (frame dropping and
// duplication) described in §4 and in Little & Kao's intermedia skew control
// scheme [LIT 92].
package buffer

import (
	"sort"
	"sync"
	"time"

	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Item is one buffered access unit with its arrival metadata.
type Item struct {
	Frame media.Frame
	// ArrivedAt is the local arrival time.
	ArrivedAt time.Time
	// Payload carries the frame data (may be nil in simulations that
	// track sizes only).
	Payload []byte
}

// Stats aggregates a buffer's lifetime counters.
type Stats struct {
	// Pushed counts frames accepted into the buffer.
	Pushed int
	// Popped counts frames handed to the playout process.
	Popped int
	// Underflows counts Pop calls that found the buffer empty.
	Underflows int
	// Overflows counts Push calls that found occupancy above the high
	// watermark.
	Overflows int
	// Dropped counts frames discarded by skew/watermark control.
	Dropped int
	// Duplicated counts frames replayed to conceal gaps.
	Duplicated int
	// Stale counts frames discarded on arrival because playout had
	// already passed their PTS.
	Stale int
}

// Buffer is one media stream's receive queue, ordered by PTS. It is safe
// for concurrent use (the real client pushes from a network goroutine while
// the playout process pops).
type Buffer struct {
	mu sync.Mutex

	// StreamID names the owning stream.
	StreamID string
	// FrameInterval is the nominal inter-frame spacing, used to convert
	// queue length to playback time.
	FrameInterval time.Duration

	// Window is the media time window: the target amount of buffered
	// playback time established by the deliberate initial delay.
	Window time.Duration
	// LowWM and HighWM are the occupancy watermarks (playback time).
	LowWM, HighWM time.Duration

	items []Item
	// floor is the PTS below which arriving frames are stale (playout
	// has moved past them).
	floor time.Duration
	// last holds the most recently popped item for duplication.
	last    Item
	hasLast bool
	stats   Stats

	// Telemetry (no-ops when the Config carried no scope). The registry
	// counters shadow the Stats fields so live dumps see them; the trace
	// records the watermark/drop/duplicate moments themselves.
	obs           *obs.Scope
	mPushed       *stats.Counter
	mStale        *stats.Counter
	mUnderflows   *stats.Counter
	mOverflows    *stats.Counter
	mDuplicated   *stats.Counter
	mDropped      *stats.Counter
	mOccupancyMax *stats.HighWater
}

// Config parameterizes a buffer.
type Config struct {
	StreamID      string
	FrameInterval time.Duration
	Window        time.Duration
	// LowWM/HighWM default to Window/4 and 2×Window.
	LowWM, HighWM time.Duration
	// Obs, when set, receives per-stream counters and watermark events.
	Obs *obs.Scope
}

// New creates a buffer.
func New(cfg Config) *Buffer {
	if cfg.FrameInterval <= 0 {
		cfg.FrameInterval = 40 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.LowWM <= 0 {
		cfg.LowWM = cfg.Window / 4
	}
	if cfg.HighWM <= 0 {
		cfg.HighWM = 2 * cfg.Window
	}
	label := func(name string) string {
		return obs.Label(name, "stream", cfg.StreamID)
	}
	return &Buffer{
		StreamID:      cfg.StreamID,
		FrameInterval: cfg.FrameInterval,
		Window:        cfg.Window,
		LowWM:         cfg.LowWM,
		HighWM:        cfg.HighWM,
		obs:           cfg.Obs,
		mPushed:       cfg.Obs.Counter(label("buffer_pushed")),
		mStale:        cfg.Obs.Counter(label("buffer_stale")),
		mUnderflows:   cfg.Obs.Counter(label("buffer_underflows")),
		mOverflows:    cfg.Obs.Counter(label("buffer_overflows")),
		mDuplicated:   cfg.Obs.Counter(label("buffer_duplicated")),
		mDropped:      cfg.Obs.Counter(label("buffer_dropped")),
		mOccupancyMax: cfg.Obs.HighWater(label("buffer_occupancy_frames")),
	}
}

// ComputeWindow performs the paper's "statistical calculation at the
// buffer's setup time": the window must cover the expected delay variation
// with a safety factor, and hold at least a few frames.
//
//	window = max(4 × frameInterval, safety × jitterBound + frameInterval)
func ComputeWindow(frameInterval, jitterBound time.Duration, safety float64) time.Duration {
	if safety <= 0 {
		safety = 2
	}
	w := time.Duration(float64(jitterBound)*safety) + frameInterval
	if min := 4 * frameInterval; w < min {
		w = min
	}
	return w
}

// Push inserts a frame in PTS order. Frames whose PTS playout has already
// passed are dropped as stale. It reports whether the frame was accepted,
// and whether occupancy now exceeds the high watermark (overflow signal for
// the monitor).
func (b *Buffer) Push(it Item) (accepted, overflow bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if it.Frame.PTS < b.floor {
		b.stats.Stale++
		b.mStale.Inc()
		b.obs.Emit(obs.EvFrameDrop, b.StreamID, 1, "stale arrival")
		return false, false
	}
	// Insert keeping PTS order (arrivals may be reordered by the network).
	i := sort.Search(len(b.items), func(i int) bool { return b.items[i].Frame.PTS > it.Frame.PTS })
	b.items = append(b.items, Item{})
	copy(b.items[i+1:], b.items[i:])
	b.items[i] = it
	b.stats.Pushed++
	b.mPushed.Inc()
	b.mOccupancyMax.Observe(int64(len(b.items)))
	if b.occupancyLocked() > b.HighWM {
		b.stats.Overflows++
		b.mOverflows.Inc()
		b.obs.Emit(obs.EvBufferWatermark, b.StreamID,
			int64(b.occupancyLocked()/time.Millisecond), "above high watermark")
		return true, true
	}
	return true, false
}

// Pop removes and returns the earliest frame. When the buffer is empty it
// returns the last played frame as a duplicate (ok=false, dup counted) —
// the paper's gap-concealment action — or a zero Item when nothing was ever
// played.
func (b *Buffer) Pop() (Item, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		b.underflowLocked()
		if b.hasLast {
			b.duplicateLocked()
			return b.last, false
		}
		return Item{}, false
	}
	it := b.items[0]
	b.items = b.items[1:]
	b.stats.Popped++
	b.last = it
	b.hasLast = true
	if pts := it.Frame.PTS + b.FrameInterval; pts > b.floor {
		b.floor = pts
	}
	return it, true
}

// underflowLocked counts a Pop that found nothing playable.
func (b *Buffer) underflowLocked() {
	b.stats.Underflows++
	b.mUnderflows.Inc()
	b.obs.Emit(obs.EvBufferWatermark, b.StreamID, 0, "underflow")
}

// duplicateLocked counts a gap concealed by replaying the last frame.
func (b *Buffer) duplicateLocked() {
	b.stats.Duplicated++
	b.mDuplicated.Inc()
	b.obs.Emit(obs.EvFrameDuplicate, b.StreamID, 1, "gap concealment")
}

// PopDue removes and returns the earliest frame only if its PTS is due
// (≤ maxPTS). When the buffer is empty or its head is a future frame — the
// expected frame is missing or late — it behaves like an underflow: the last
// played frame is returned as a concealment duplicate (ok=false).
func (b *Buffer) PopDue(maxPTS time.Duration) (Item, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 || b.items[0].Frame.PTS > maxPTS {
		b.underflowLocked()
		if b.hasLast {
			b.duplicateLocked()
			return b.last, false
		}
		return Item{}, false
	}
	it := b.items[0]
	b.items = b.items[1:]
	b.stats.Popped++
	b.last = it
	b.hasLast = true
	if pts := it.Frame.PTS + b.FrameInterval; pts > b.floor {
		b.floor = pts
	}
	return it, true
}

// Peek returns the earliest frame without removing it.
func (b *Buffer) Peek() (Item, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return Item{}, false
	}
	return b.items[0], true
}

// Drop discards up to n earliest frames (skew-control action on a leading
// or over-full stream) and returns how many were discarded and the PTS
// floor after the drop.
func (b *Buffer) Drop(n int) (dropped int, newFloor time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for dropped < n && len(b.items) > 0 {
		it := b.items[0]
		b.items = b.items[1:]
		dropped++
		b.stats.Dropped++
		b.mDropped.Inc()
		if pts := it.Frame.PTS + b.FrameInterval; pts > b.floor {
			b.floor = pts
		}
	}
	return dropped, b.floor
}

// DropBefore discards up to max earliest frames whose PTS is strictly below
// pts — the stale backlog behind the playout position. Unlike Drop it never
// touches future frames, so the monitor can trim accumulated lateness
// without starving upcoming playout slots.
func (b *Buffer) DropBefore(pts time.Duration, max int) (dropped int, newFloor time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for dropped < max && len(b.items) > 0 && b.items[0].Frame.PTS < pts {
		it := b.items[0]
		b.items = b.items[1:]
		dropped++
		b.stats.Dropped++
		b.mDropped.Inc()
		if f := it.Frame.PTS + b.FrameInterval; f > b.floor {
			b.floor = f
		}
	}
	return dropped, b.floor
}

// Len returns the queued frame count.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// Occupancy returns the buffered playback time: queued frames × interval.
func (b *Buffer) Occupancy() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.occupancyLocked()
}

func (b *Buffer) occupancyLocked() time.Duration {
	return time.Duration(len(b.items)) * b.FrameInterval
}

// BelowLow reports occupancy under the low watermark.
func (b *Buffer) BelowLow() bool { return b.Occupancy() < b.LowWM }

// AboveHigh reports occupancy over the high watermark.
func (b *Buffer) AboveHigh() bool { return b.Occupancy() > b.HighWM }

// Filled reports whether the buffer holds at least its media time window of
// data — the presentation-start criterion after the deliberate initial
// delay.
func (b *Buffer) Filled() bool { return b.Occupancy() >= b.Window }

// Floor returns the PTS below which arrivals are stale.
func (b *Buffer) Floor() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.floor
}

// Stats returns a snapshot of the counters.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Reset empties the buffer and clears the stale floor (used on reload and
// on resume after long pauses).
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.items = nil
	b.floor = 0
	b.hasLast = false
	b.last = Item{}
}

// Set is the client's collection of per-stream buffers — the "multiple
// thread queue" of the paper, one thread per media connection.
type Set struct {
	mu   sync.Mutex
	bufs map[string]*Buffer
}

// NewSet creates an empty buffer set.
func NewSet() *Set { return &Set{bufs: map[string]*Buffer{}} }

// Create adds a buffer for a stream, replacing any previous one.
func (s *Set) Create(cfg Config) *Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := New(cfg)
	s.bufs[cfg.StreamID] = b
	return b
}

// Get returns the stream's buffer, or nil.
func (s *Set) Get(id string) *Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufs[id]
}

// All returns the buffers in deterministic (stream id) order.
func (s *Set) All() []*Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.bufs))
	for id := range s.bufs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Buffer, len(ids))
	for i, id := range ids {
		out[i] = s.bufs[id]
	}
	return out
}

// AllFilled reports whether every buffer holds its media time window (or is
// empty-windowed). Used to end the initial delay.
func (s *Set) AllFilled() bool {
	for _, b := range s.All() {
		if !b.Filled() {
			return false
		}
	}
	return true
}

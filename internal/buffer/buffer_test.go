package buffer

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
)

func frame(i int, interval time.Duration) Item {
	return Item{Frame: media.Frame{Index: i, PTS: time.Duration(i) * interval, Size: 100}}
}

func newBuf() *Buffer {
	return New(Config{StreamID: "s", FrameInterval: 40 * time.Millisecond, Window: 400 * time.Millisecond})
}

func TestConfigDefaults(t *testing.T) {
	b := New(Config{StreamID: "x"})
	if b.FrameInterval != 40*time.Millisecond || b.Window != time.Second {
		t.Fatalf("defaults: %v %v", b.FrameInterval, b.Window)
	}
	if b.LowWM != b.Window/4 || b.HighWM != 2*b.Window {
		t.Fatalf("watermarks: %v %v", b.LowWM, b.HighWM)
	}
}

func TestPushPopFIFO(t *testing.T) {
	b := newBuf()
	for i := 0; i < 5; i++ {
		if ok, _ := b.Push(frame(i, b.FrameInterval)); !ok {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 0; i < 5; i++ {
		it, ok := b.Pop()
		if !ok || it.Frame.Index != i {
			t.Fatalf("pop %d = %+v ok=%v", i, it.Frame, ok)
		}
	}
	st := b.Stats()
	if st.Pushed != 5 || st.Popped != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPushReordersByPTS(t *testing.T) {
	b := newBuf()
	for _, i := range []int{3, 0, 2, 1} {
		b.Push(frame(i, b.FrameInterval))
	}
	for i := 0; i < 4; i++ {
		it, _ := b.Pop()
		if it.Frame.Index != i {
			t.Fatalf("order broken at %d: got %d", i, it.Frame.Index)
		}
	}
}

func TestPopEmptyDuplicatesLast(t *testing.T) {
	b := newBuf()
	// Nothing ever played: zero item, no dup.
	it, ok := b.Pop()
	if ok || it.Payload != nil {
		t.Fatalf("empty pop = %+v", it)
	}
	if b.Stats().Underflows != 1 || b.Stats().Duplicated != 0 {
		t.Fatalf("stats = %+v", b.Stats())
	}
	b.Push(frame(0, b.FrameInterval))
	b.Pop()
	dup, ok := b.Pop()
	if ok || dup.Frame.Index != 0 {
		t.Fatalf("dup = %+v ok=%v", dup.Frame, ok)
	}
	st := b.Stats()
	if st.Duplicated != 1 || st.Underflows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStaleRejection(t *testing.T) {
	b := newBuf()
	b.Push(frame(2, b.FrameInterval))
	b.Pop() // floor moves to PTS(2)+interval = 120ms
	if ok, _ := b.Push(frame(1, b.FrameInterval)); ok {
		t.Fatal("stale frame accepted")
	}
	if b.Stats().Stale != 1 {
		t.Fatalf("stale = %d", b.Stats().Stale)
	}
	// Frame at the floor boundary is accepted.
	if ok, _ := b.Push(frame(3, b.FrameInterval)); !ok {
		t.Fatal("fresh frame rejected")
	}
}

func TestOverflowSignal(t *testing.T) {
	b := New(Config{StreamID: "s", FrameInterval: 40 * time.Millisecond, Window: 200 * time.Millisecond, HighWM: 200 * time.Millisecond})
	overflowAt := -1
	for i := 0; i < 10; i++ {
		_, over := b.Push(frame(i, b.FrameInterval))
		if over && overflowAt < 0 {
			overflowAt = i
		}
	}
	// High WM 200ms = 5 frames; the 6th push crosses it.
	if overflowAt != 5 {
		t.Fatalf("overflow at push %d, want 5", overflowAt)
	}
	if !b.AboveHigh() {
		t.Fatal("AboveHigh false")
	}
}

func TestDropAdvancesFloor(t *testing.T) {
	b := newBuf()
	for i := 0; i < 6; i++ {
		b.Push(frame(i, b.FrameInterval))
	}
	n, floor := b.Drop(3)
	if n != 3 {
		t.Fatalf("dropped %d", n)
	}
	if want := 3 * b.FrameInterval; floor != want {
		t.Fatalf("floor = %v, want %v", floor, want)
	}
	it, _ := b.Pop()
	if it.Frame.Index != 3 {
		t.Fatalf("after drop, head = %d", it.Frame.Index)
	}
	// Drop more than queued.
	n, _ = b.Drop(100)
	if n != 2 {
		t.Fatalf("over-drop = %d, want 2", n)
	}
	if b.Stats().Dropped != 5 {
		t.Fatalf("dropped stat = %d", b.Stats().Dropped)
	}
}

func TestOccupancyAndWatermarks(t *testing.T) {
	b := newBuf() // window 400ms, low 100ms, high 800ms
	if !b.BelowLow() || b.Filled() {
		t.Fatal("empty buffer state wrong")
	}
	for i := 0; i < 10; i++ { // 400ms
		b.Push(frame(i, b.FrameInterval))
	}
	if b.Occupancy() != 400*time.Millisecond {
		t.Fatalf("occupancy = %v", b.Occupancy())
	}
	if b.BelowLow() || !b.Filled() || b.AboveHigh() {
		t.Fatal("filled state wrong")
	}
	for i := 10; i < 25; i++ { // 1000ms total
		b.Push(frame(i, b.FrameInterval))
	}
	if !b.AboveHigh() {
		t.Fatal("high watermark not detected")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	b := newBuf()
	if _, ok := b.Peek(); ok {
		t.Fatal("peek on empty")
	}
	b.Push(frame(0, b.FrameInterval))
	it, ok := b.Peek()
	if !ok || it.Frame.Index != 0 || b.Len() != 1 {
		t.Fatal("peek consumed")
	}
}

func TestReset(t *testing.T) {
	b := newBuf()
	b.Push(frame(0, b.FrameInterval))
	b.Pop()
	b.Push(frame(5, b.FrameInterval))
	b.Reset()
	if b.Len() != 0 || b.Floor() != 0 {
		t.Fatal("reset incomplete")
	}
	// After reset, even "old" frames are accepted again.
	if ok, _ := b.Push(frame(0, b.FrameInterval)); !ok {
		t.Fatal("post-reset push rejected")
	}
	// And no duplicate of the pre-reset last frame lingers.
	b.Pop()
	if it, ok := b.Pop(); ok || it.Frame.Index != 0 {
		t.Fatalf("post-reset dup = %+v ok=%v", it.Frame, ok)
	}
}

func TestComputeWindow(t *testing.T) {
	fi := 40 * time.Millisecond
	// Low jitter: floor of 4 frames.
	if w := ComputeWindow(fi, 10*time.Millisecond, 2); w != 160*time.Millisecond {
		t.Fatalf("low-jitter window = %v", w)
	}
	// High jitter dominates: 2×200 + 40 = 440ms.
	if w := ComputeWindow(fi, 200*time.Millisecond, 2); w != 440*time.Millisecond {
		t.Fatalf("high-jitter window = %v", w)
	}
	// Default safety.
	if w := ComputeWindow(fi, 200*time.Millisecond, 0); w != 440*time.Millisecond {
		t.Fatalf("default-safety window = %v", w)
	}
	// Window grows with jitter.
	last := time.Duration(0)
	for j := time.Duration(0); j <= 500*time.Millisecond; j += 50 * time.Millisecond {
		w := ComputeWindow(fi, j, 2)
		if w < last {
			t.Fatal("window not monotone in jitter")
		}
		last = w
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet()
	b1 := s.Create(Config{StreamID: "a", FrameInterval: 40 * time.Millisecond, Window: 80 * time.Millisecond})
	s.Create(Config{StreamID: "b", FrameInterval: 20 * time.Millisecond, Window: 40 * time.Millisecond})
	if s.Get("a") != b1 || s.Get("zz") != nil {
		t.Fatal("Get wrong")
	}
	all := s.All()
	if len(all) != 2 || all[0].StreamID != "a" || all[1].StreamID != "b" {
		t.Fatalf("All = %v", all)
	}
	if s.AllFilled() {
		t.Fatal("empty set reported filled")
	}
	for i := 0; i < 2; i++ {
		b1.Push(frame(i, b1.FrameInterval))
	}
	if s.AllFilled() {
		t.Fatal("b not filled yet")
	}
	b2 := s.Get("b")
	for i := 0; i < 2; i++ {
		b2.Push(frame(i, b2.FrameInterval))
	}
	if !s.AllFilled() {
		t.Fatal("set should be filled")
	}
}

// Property: pops always come out in non-decreasing PTS order regardless of
// push order, and counters balance.
func TestQuickPopOrderAndConservation(t *testing.T) {
	f := func(indices []uint8) bool {
		b := New(Config{StreamID: "q", FrameInterval: time.Millisecond, Window: time.Hour, HighWM: time.Hour})
		pushed := 0
		for _, i := range indices {
			if ok, _ := b.Push(frame(int(i), time.Millisecond)); ok {
				pushed++
			}
		}
		last := time.Duration(-1)
		popped := 0
		for {
			it, ok := b.Pop()
			if !ok {
				break
			}
			if it.Frame.PTS < last {
				return false
			}
			last = it.Frame.PTS
			popped++
		}
		st := b.Stats()
		return popped == pushed && st.Pushed == pushed && st.Popped == popped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Drop(k) the head PTS is ≥ the floor.
func TestQuickDropFloorInvariant(t *testing.T) {
	f := func(n, k uint8) bool {
		b := New(Config{StreamID: "q", FrameInterval: time.Millisecond, Window: time.Hour, HighWM: time.Hour})
		for i := 0; i < int(n); i++ {
			b.Push(frame(i, time.Millisecond))
		}
		b.Drop(int(k))
		if it, ok := b.Peek(); ok {
			return it.Frame.PTS >= b.Floor()-b.FrameInterval
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPopDueRespectsDeadline(t *testing.T) {
	b := newBuf()
	b.Push(frame(5, b.FrameInterval)) // PTS 200ms
	// Due position 100ms: the head is a future frame → concealment.
	it, ok := b.PopDue(100 * time.Millisecond)
	if ok {
		t.Fatalf("future frame popped: %+v", it.Frame)
	}
	if b.Stats().Underflows != 1 {
		t.Fatal("future-head pop not counted as underflow")
	}
	// Due position 200ms: now it plays.
	it, ok = b.PopDue(200 * time.Millisecond)
	if !ok || it.Frame.Index != 5 {
		t.Fatalf("due frame not popped: %+v ok=%v", it.Frame, ok)
	}
	// Empty buffer duplicates the last played frame.
	dup, ok := b.PopDue(time.Hour)
	if ok || dup.Frame.Index != 5 {
		t.Fatalf("dup = %+v ok=%v", dup.Frame, ok)
	}
	if b.Stats().Duplicated != 1 {
		t.Fatal("dup not counted")
	}
}

func TestPopDueAdvancesFloor(t *testing.T) {
	b := newBuf()
	b.Push(frame(0, b.FrameInterval))
	b.PopDue(0)
	if b.Floor() != b.FrameInterval {
		t.Fatalf("floor = %v", b.Floor())
	}
}

func TestDropBeforeOnlyDropsStale(t *testing.T) {
	b := newBuf()
	for i := 0; i < 10; i++ {
		b.Push(frame(i, b.FrameInterval))
	}
	// Frames 0..4 have PTS < 200ms; 5..9 are future relative to 200ms.
	n, floor := b.DropBefore(200*time.Millisecond, 100)
	if n != 5 {
		t.Fatalf("dropped %d, want 5", n)
	}
	if floor != 5*b.FrameInterval {
		t.Fatalf("floor = %v", floor)
	}
	if b.Len() != 5 {
		t.Fatalf("remaining = %d", b.Len())
	}
	it, _ := b.Peek()
	if it.Frame.Index != 5 {
		t.Fatalf("head = %d", it.Frame.Index)
	}
	// A capped drop stops at max.
	n, _ = b.DropBefore(time.Hour, 2)
	if n != 2 {
		t.Fatalf("capped drop = %d", n)
	}
}

func TestDropBeforeNothingStale(t *testing.T) {
	b := newBuf()
	b.Push(frame(10, b.FrameInterval))
	if n, _ := b.DropBefore(100*time.Millisecond, 5); n != 0 {
		t.Fatalf("dropped future frames: %d", n)
	}
}

package buffer

import "sync"

// Buf is one pooled byte buffer. Callers append into B (typically after
// truncating with B[:0]) and must write the final slice back before Put so
// the grown backing array is what returns to the pool.
type Buf struct {
	B []byte
}

// Pool recycles byte buffers for the data plane's per-packet and per-frame
// scratch: packet assembly on the server, frame reassembly on the client,
// in-flight payload copies inside the network simulator. The zero value is
// ready to use.
//
// Ownership is strictly hand-over-hand: a Buf obtained from Get belongs to
// the caller until Put, after which the caller must not touch it (or any
// slice aliasing it) again. Pooled buffers hold stale garbage — callers
// overwrite, never read, the capacity beyond what they wrote.
type Pool struct {
	p sync.Pool
}

// maxPooled bounds the buffers kept across Put calls so one oversized frame
// (a full-quality still is ~150 KB) cannot pin arbitrary memory in the pool
// forever. Larger buffers are simply dropped for the GC.
const maxPooled = 256 << 10

// Get returns a buffer whose B has length n (contents undefined) and at
// least that capacity.
func (p *Pool) Get(n int) *Buf {
	if v := p.p.Get(); v != nil {
		b := v.(*Buf)
		if cap(b.B) >= n {
			b.B = b.B[:n]
			return b
		}
		b.B = make([]byte, n)
		return b
	}
	return &Buf{B: make([]byte, n)}
}

// Put returns a buffer to the pool. Passing nil is a no-op.
func (p *Pool) Put(b *Buf) {
	if b == nil || cap(b.B) > maxPooled {
		return
	}
	b.B = b.B[:0]
	p.p.Put(b)
}

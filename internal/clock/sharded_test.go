package clock

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// trace records (shard, offset, tag) firing events for replay comparison.
type shardTrace struct {
	mu      sync.Mutex
	entries []string
}

func (tr *shardTrace) add(shard int, off time.Duration, tag string) {
	tr.mu.Lock()
	tr.entries = append(tr.entries, fmt.Sprintf("s%d@%v:%s", shard, off, tag))
	tr.mu.Unlock()
}

// perShard returns the entries grouped by shard in firing order; the global
// interleaving across shards within a window is unordered by design, so
// determinism is asserted per shard.
func (tr *shardTrace) perShard(shards int) []string {
	out := make([]string, shards)
	for _, e := range tr.entries {
		var s int
		fmt.Sscanf(e, "s%d@", &s)
		out[s] += e + ";"
	}
	return out
}

func TestShardedSingleShardMatchesVirtual(t *testing.T) {
	program := func(c Clock, out *[]time.Duration) {
		var tm *Timer
		n := 0
		tm = c.AfterFunc(10*time.Millisecond, func() {
			*out = append(*out, c.Since(Epoch))
			n++
			if n < 5 {
				tm.Reset(10 * time.Millisecond)
			}
		})
		c.AfterFunc(25*time.Millisecond, func() { *out = append(*out, c.Since(Epoch)) })
	}
	var plain, sharded []time.Duration
	v := NewSim()
	program(v, &plain)
	vFired := v.Run(Epoch.Add(time.Second))

	sv := NewShardedSim(1, 5*time.Millisecond)
	program(sv.Shard(0), &sharded)
	sFired := sv.Run(Epoch.Add(time.Second))

	if vFired != sFired {
		t.Fatalf("fired %d events via Virtual, %d via 1-shard ShardedVirtual", vFired, sFired)
	}
	if len(plain) != len(sharded) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain), len(sharded))
	}
	for i := range plain {
		if plain[i] != sharded[i] {
			t.Fatalf("trace[%d] = %v vs %v", i, plain[i], sharded[i])
		}
	}
	if !v.Now().Equal(sv.Now()) {
		t.Fatalf("clocks diverged: %v vs %v", v.Now(), sv.Now())
	}
}

func TestCrossShardArrivesAtExactDeadline(t *testing.T) {
	const lookahead = 10 * time.Millisecond
	sv := NewShardedSim(2, lookahead)
	var firedAt time.Duration
	// Shard 0 event at t=3ms hands off to shard 1 at t=3ms+lookahead+2ms.
	sv.Shard(0).AfterFunc(3*time.Millisecond, func() {
		at := sv.Shard(0).Now().Add(lookahead + 2*time.Millisecond)
		sv.ScheduleCross(0, 1, at, func() {
			firedAt = sv.Shard(1).Since(Epoch)
		})
	})
	sv.RunUntilIdle()
	if want := 15 * time.Millisecond; firedAt != want {
		t.Fatalf("cross event fired at %v, want %v", firedAt, want)
	}
	if _, clamps, _, _, _ := sv.CrossStats(); clamps != 0 {
		t.Fatalf("cross arrival was clamped %d times; lookahead should have been honored", clamps)
	}
}

func TestCrossShardTooEarlyIsClampedNeverPast(t *testing.T) {
	const lookahead = 10 * time.Millisecond
	sv := NewShardedSim(2, lookahead)
	var firedAt, destNowAtFire time.Duration
	sv.Shard(0).AfterFunc(5*time.Millisecond, func() {
		// A violating handoff: only 1ms of latency, less than the lookahead.
		at := sv.Shard(0).Now().Add(time.Millisecond)
		sv.ScheduleCross(0, 1, at, func() {
			firedAt = at.Sub(Epoch)
			destNowAtFire = sv.Shard(1).Since(Epoch)
		})
	})
	sv.RunUntilIdle()
	if _, clamps, _, _, _ := sv.CrossStats(); clamps != 1 {
		t.Fatalf("clamps = %d, want 1", clamps)
	}
	if destNowAtFire < firedAt {
		t.Fatalf("cross event fired in the destination's past: dest=%v requested=%v", destNowAtFire, firedAt)
	}
}

func TestShardClocksConvergeAtBarriers(t *testing.T) {
	// After every Run the group has rendezvoused: all shard clocks sit at
	// the same instant, even when the workload was wildly uneven.
	const lookahead = 4 * time.Millisecond
	sv := NewShardedSim(3, lookahead)
	for i := 0; i < 100; i++ {
		for s := 0; s < 3; s++ {
			sv.Shard(s).AfterFunc(time.Duration(i*(s+1))*time.Millisecond, func() {})
		}
	}
	sv.RunUntilIdle()
	t0 := sv.Shard(0).Now()
	for s := 1; s < 3; s++ {
		if !sv.Shard(s).Now().Equal(t0) {
			t.Fatalf("shard %d at %v, shard 0 at %v after idle run", s, sv.Shard(s).Now(), t0)
		}
	}
}

// pingPong builds a deterministic multi-shard workload: every shard runs a
// population of self-re-arming pacers whose callbacks occasionally hand work
// across shards at exactly lookahead+1ms of latency.
func pingPong(sv *ShardedVirtual, tr *shardTrace, pacersPerShard, hops int) {
	lk := sv.Lookahead()
	for s := 0; s < sv.Shards(); s++ {
		s := s
		for p := 0; p < pacersPerShard; p++ {
			p := p
			period := time.Duration(700+13*p+101*s) * time.Microsecond
			n := 0
			var tm *Timer
			var tick func()
			tick = func() {
				n++
				tr.add(s, sv.Shard(s).Since(Epoch), fmt.Sprintf("p%d.%d", p, n))
				if n%5 == 0 && sv.Shards() > 1 {
					dst := (s + 1 + (p+n)%(sv.Shards()-1)) % sv.Shards()
					hop := n
					at := sv.Shard(s).Now().Add(lk + time.Millisecond)
					sv.ScheduleCross(s, dst, at, func() {
						tr.add(dst, sv.Shard(dst).Since(Epoch), fmt.Sprintf("x%d.%d.%d", s, p, hop))
					})
				}
				if n < hops {
					tm.Reset(period)
				}
			}
			tm = sv.Shard(s).AfterFunc(period, tick)
		}
	}
}

func runPingPong(shards, gomaxprocs int) []string {
	old := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(old)
	sv := NewShardedSim(shards, 2*time.Millisecond)
	tr := &shardTrace{}
	pingPong(sv, tr, 8, 40)
	sv.RunUntilIdle()
	return tr.perShard(shards)
}

func TestShardedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		serial := runPingPong(shards, 1)
		parallel := runPingPong(shards, runtime.NumCPU())
		replay := runPingPong(shards, runtime.NumCPU())
		for s := range serial {
			if serial[s] != parallel[s] {
				t.Fatalf("shards=%d shard %d trace differs between GOMAXPROCS=1 and =%d", shards, s, runtime.NumCPU())
			}
			if parallel[s] != replay[s] {
				t.Fatalf("shards=%d shard %d trace differs between two identical runs", shards, s)
			}
		}
	}
}

func TestShardedRunHorizonAndCounts(t *testing.T) {
	sv := NewShardedSim(3, 5*time.Millisecond)
	fired := 0
	for s := 0; s < 3; s++ {
		s := s
		sv.Shard(s).AfterFunc(time.Duration(s+1)*time.Second, func() { fired++ })
	}
	n := sv.Run(Epoch.Add(2500 * time.Millisecond))
	if n != 2 || fired != 2 {
		t.Fatalf("Run fired %d (%d observed), want 2", n, fired)
	}
	if sv.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", sv.Pending())
	}
	if got := sv.Since(Epoch); got != 2500*time.Millisecond {
		t.Fatalf("floor at %v after horizon run, want 2.5s", got)
	}
	if n := sv.RunUntilIdle(); n != 1 {
		t.Fatalf("RunUntilIdle fired %d, want 1", n)
	}
}

func TestShardedMailboxAccounting(t *testing.T) {
	sv := NewShardedSim(2, time.Millisecond)
	sv.SetMailboxCap(4)
	sv.Shard(0).AfterFunc(time.Millisecond, func() {
		at := sv.Shard(0).Now().Add(2 * time.Millisecond)
		for i := 0; i < 6; i++ {
			sv.ScheduleCross(0, 1, at, func() {})
		}
	})
	sv.RunUntilIdle()
	sent, _, overflows, hw, rounds := sv.CrossStats()
	if sent != 6 {
		t.Fatalf("cross sent = %d, want 6", sent)
	}
	if overflows != 2 {
		t.Fatalf("overflows = %d, want 2 (cap 4, 6 enqueued)", overflows)
	}
	if hw != 6 {
		t.Fatalf("mailbox high-water = %d, want 6", hw)
	}
	if rounds == 0 {
		t.Fatal("no barrier rounds recorded")
	}
}

// TestShardedConcurrentTimerOpsRace hammers one driver with cross-goroutine
// AfterFunc/Stop/Reset against running workers; the race gate (make race now
// covers internal/clock) is what this exists for.
func TestShardedConcurrentTimerOpsRace(t *testing.T) {
	sv := NewShardedSim(4, time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tm := sv.Shard(g).AfterFunc(time.Duration(1+i%7)*time.Millisecond, func() {})
				if i%3 == 0 {
					tm.Stop()
				} else if i%3 == 1 {
					tm.Reset(time.Duration(1+i%5) * time.Millisecond)
				}
			}
		}()
	}
	for r := 0; r < 50; r++ {
		sv.RunFor(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	sv.RunUntilIdle()
}

package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewSim()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvanceMovesTime(t *testing.T) {
	v := NewSim()
	v.Advance(3 * time.Second)
	if got := v.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 3s", got)
	}
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	v := NewSim()
	var firedAt time.Time
	v.AfterFunc(250*time.Millisecond, func() { firedAt = v.Now() })
	v.Advance(200 * time.Millisecond)
	if !firedAt.IsZero() {
		t.Fatalf("timer fired early at %v", firedAt)
	}
	v.Advance(100 * time.Millisecond)
	want := Epoch.Add(250 * time.Millisecond)
	if !firedAt.Equal(want) {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
}

func TestAfterFuncZeroAndNegativeDelay(t *testing.T) {
	v := NewSim()
	n := 0
	v.AfterFunc(0, func() { n++ })
	v.AfterFunc(-time.Second, func() { n++ })
	if n != 0 {
		t.Fatal("callbacks must not fire synchronously")
	}
	v.RunUntilIdle()
	if n != 2 {
		t.Fatalf("fired %d callbacks, want 2", n)
	}
	if !v.Now().Equal(Epoch) {
		t.Fatalf("time moved to %v firing immediate timers", v.Now())
	}
}

func TestTimersFireInDeadlineOrderWithFIFOTies(t *testing.T) {
	v := NewSim()
	var order []int
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 0) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	v.RunUntilIdle()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestStopPreventsFiring(t *testing.T) {
	v := NewSim()
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFiringReportsFalse(t *testing.T) {
	v := NewSim()
	tm := v.AfterFunc(time.Millisecond, func() {})
	v.Advance(time.Millisecond)
	if tm.Stop() {
		t.Fatal("Stop() = true after the timer fired")
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	v := NewSim()
	var times []time.Duration
	var tick func()
	tick = func() {
		times = append(times, v.Since(Epoch))
		if len(times) < 5 {
			v.AfterFunc(100*time.Millisecond, tick)
		}
	}
	v.AfterFunc(100*time.Millisecond, tick)
	v.RunFor(time.Minute)
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5", len(times))
	}
	for i, d := range times {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if d != want {
			t.Fatalf("tick %d at %v, want %v", i, d, want)
		}
	}
}

func TestAdvanceFiresNestedTimersWithinSpan(t *testing.T) {
	v := NewSim()
	var at []time.Duration
	v.AfterFunc(10*time.Millisecond, func() {
		at = append(at, v.Since(Epoch))
		v.AfterFunc(5*time.Millisecond, func() {
			at = append(at, v.Since(Epoch))
		})
	})
	v.Advance(20 * time.Millisecond)
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("fired at %v, want [10ms 15ms]", at)
	}
	if got := v.Since(Epoch); got != 20*time.Millisecond {
		t.Fatalf("clock at %v after Advance, want 20ms", got)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	v := NewSim()
	fired := 0
	v.AfterFunc(time.Second, func() { fired++ })
	v.AfterFunc(3*time.Second, func() { fired++ })
	n := v.Run(Epoch.Add(2 * time.Second))
	if n != 1 || fired != 1 {
		t.Fatalf("Run fired %d (%d observed), want 1", n, fired)
	}
	if got := v.Since(Epoch); got != 2*time.Second {
		t.Fatalf("clock at %v, want horizon 2s", got)
	}
	if v.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", v.Pending())
	}
}

func TestStepAdvancesOneEvent(t *testing.T) {
	v := NewSim()
	fired := 0
	v.AfterFunc(time.Second, func() { fired++ })
	v.AfterFunc(2*time.Second, func() { fired++ })
	if !v.Step() || fired != 1 {
		t.Fatalf("first Step fired %d, want 1", fired)
	}
	if !v.Step() || fired != 2 {
		t.Fatalf("second Step fired %d, want 2", fired)
	}
	if v.Step() {
		t.Fatal("Step() = true on empty queue")
	}
}

func TestNextDeadline(t *testing.T) {
	v := NewSim()
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline on an empty clock")
	}
	v.AfterFunc(7*time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	d, ok := v.NextDeadline()
	if !ok || !d.Equal(Epoch.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v,%v; want %v,true", d, ok, Epoch.Add(2*time.Second))
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	v := NewSim()
	var fired time.Time
	v.At(Epoch.Add(42*time.Second), func() { fired = v.Now() })
	v.RunUntilIdle()
	if !fired.Equal(Epoch.Add(42 * time.Second)) {
		t.Fatalf("fired at %v, want Epoch+42s", fired)
	}
}

func TestWallClockBasics(t *testing.T) {
	w := NewWall()
	before := time.Now()
	now := w.Now()
	if now.Before(before) {
		t.Fatal("wall Now went backwards")
	}
	done := make(chan struct{})
	tm := w.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop() = true after wall timer fired")
	}
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil Timer Stop() = true")
	}
	if tm.Reset(time.Second) {
		t.Fatal("nil Timer Reset() = true")
	}
}

func TestResetPostponesPendingTimer(t *testing.T) {
	v := NewSim()
	var firedAt []time.Duration
	tm := v.AfterFunc(10*time.Millisecond, func() { firedAt = append(firedAt, v.Since(Epoch)) })
	if !tm.Reset(50 * time.Millisecond) {
		t.Fatal("Reset on a pending timer must report true")
	}
	v.Advance(20 * time.Millisecond)
	if len(firedAt) != 0 {
		t.Fatalf("superseded deadline fired at %v", firedAt)
	}
	v.Advance(time.Second)
	if len(firedAt) != 1 || firedAt[0] != 50*time.Millisecond {
		t.Fatalf("fired at %v, want [50ms]", firedAt)
	}
}

func TestResetReArmsFiredTimer(t *testing.T) {
	v := NewSim()
	var firedAt []time.Duration
	var tm *Timer
	tm = v.AfterFunc(10*time.Millisecond, func() { firedAt = append(firedAt, v.Since(Epoch)) })
	v.Advance(20 * time.Millisecond)
	if tm.Reset(10 * time.Millisecond) {
		t.Fatal("Reset on a fired timer must report false")
	}
	v.Advance(20 * time.Millisecond)
	if len(firedAt) != 2 || firedAt[0] != 10*time.Millisecond || firedAt[1] != 30*time.Millisecond {
		t.Fatalf("fired at %v, want [10ms 30ms]", firedAt)
	}
}

func TestResetReArmsStoppedTimer(t *testing.T) {
	v := NewSim()
	fired := 0
	tm := v.AfterFunc(10*time.Millisecond, func() { fired++ })
	tm.Stop()
	if tm.Reset(5 * time.Millisecond) {
		t.Fatal("Reset on a stopped timer must report false")
	}
	v.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

// TestResetFromOwnCallbackPaces is the pacing-loop pattern the data plane
// relies on: one timer re-armed from inside its own callback must tick
// periodically with no drift and fire exactly once per period.
func TestResetFromOwnCallbackPaces(t *testing.T) {
	v := NewSim()
	var ticks []time.Duration
	var tm *Timer
	tm = v.AfterFunc(100*time.Millisecond, func() {
		ticks = append(ticks, v.Since(Epoch))
		if len(ticks) < 5 {
			tm.Reset(100 * time.Millisecond)
		}
	})
	v.RunFor(time.Minute)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, d := range ticks {
		if want := time.Duration(i+1) * 100 * time.Millisecond; d != want {
			t.Fatalf("tick %d at %v, want %v", i, d, want)
		}
	}
}

// TestResetKeepsFIFOOrdering: a reset timer lands *after* timers already
// scheduled for the same deadline, exactly as a freshly created one would —
// the determinism guarantee simulation replay depends on.
func TestResetKeepsFIFOOrdering(t *testing.T) {
	v := NewSim()
	var order []int
	tm := v.AfterFunc(5*time.Millisecond, func() { order = append(order, 9) })
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 0) })
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 1) })
	tm.Reset(20 * time.Millisecond) // same deadline, re-armed last → fires last
	v.RunUntilIdle()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 9 {
		t.Fatalf("order = %v, want [0 1 9]", order)
	}
}

func TestWallTimerReset(t *testing.T) {
	w := NewWall()
	done := make(chan struct{})
	tm := w.AfterFunc(time.Hour, func() { close(done) })
	if !tm.Reset(time.Millisecond) {
		t.Fatal("Reset on a pending wall timer must report true")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reset wall timer never fired")
	}
}

// Property: for any set of non-negative delays, RunUntilIdle fires all timers
// exactly once and in non-decreasing deadline order.
func TestQuickFiringOrder(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		v := NewSim()
		var fired []time.Duration
		for _, ms := range delaysMS {
			d := time.Duration(ms) * time.Millisecond
			v.AfterFunc(d, func() { fired = append(fired, v.Since(Epoch)) })
		}
		v.RunUntilIdle()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkVirtualRun drives the event loop with the workload shape the
// simulator produces: a population of pacing timers that each re-arm
// themselves from their own callback, plus one-shot deliveries. The hot cost
// is the per-event pop; the loop now takes the mutex once per fired event
// (it used to peek in Run, peek again in Step and pop in popDue — three
// acquisitions per event).
func BenchmarkVirtualRun(b *testing.B) {
	const pacers = 256
	b.ReportAllocs()
	b.ResetTimer()
	fired := 0
	for b.Loop() {
		v := NewSim()
		for i := 0; i < pacers; i++ {
			var tick func()
			var tm *Timer
			period := time.Duration(100+i) * time.Microsecond
			tick = func() {
				fired++
				tm.Reset(period)
			}
			tm = v.AfterFunc(period, tick)
		}
		v.RunFor(20 * time.Millisecond)
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// Property: stopping a random subset of timers fires exactly the complement.
func TestQuickStopSubset(t *testing.T) {
	f := func(delaysMS []uint8, stopMask []bool) bool {
		v := NewSim()
		fired := 0
		var timers []*Timer
		for _, ms := range delaysMS {
			timers = append(timers, v.AfterFunc(time.Duration(ms)*time.Millisecond, func() { fired++ }))
		}
		stopped := 0
		for i, tm := range timers {
			if i < len(stopMask) && stopMask[i] {
				if tm.Stop() {
					stopped++
				}
			}
		}
		v.RunUntilIdle()
		return fired == len(delaysMS)-stopped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

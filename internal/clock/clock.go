// Package clock abstracts time so that the entire service can run either on
// the operating-system wall clock (for the real client/server binaries) or on
// a deterministic virtual clock (for simulation, tests and benchmarks).
//
// All timing-sensitive code in this repository — playout scheduling, buffer
// monitoring, QoS feedback intervals, suspend grace periods — is written
// against the Clock interface, never against package time directly. This is
// what lets the experiment harness replay a multi-minute multimedia session
// in milliseconds while exercising exactly the production code paths.
//
// The Virtual clock doubles as a discrete-event scheduler: timers registered
// with AfterFunc fire as ordinary function calls from whichever goroutine
// drives the clock (Advance, Step or Run), in strict deadline order with FIFO
// tie-breaking. A whole client/server session over the simulated network is
// therefore a single-threaded, perfectly reproducible computation.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout the service.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the duration elapsed since t on this clock.
	Since(t time.Time) time.Duration
	// AfterFunc arranges for fn to be called once d has elapsed on this
	// clock and returns a handle that can cancel the call.
	AfterFunc(d time.Duration, fn func()) *Timer
}

// Timer is a cancellable pending AfterFunc call.
type Timer struct {
	stop  func() bool
	reset func(time.Duration) bool
}

// Stop cancels the timer. It reports true when the call was prevented from
// firing, false when it already fired (or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// Reset re-arms the timer to fire its function after d from now, whether it
// is still pending, already fired, or was stopped. It reports true when the
// timer was pending (the previously scheduled call is superseded). Reset
// lets a periodic caller — the media pacing loop re-arming itself every
// frame — reuse one timer instead of allocating a fresh AfterFunc per tick.
func (t *Timer) Reset(d time.Duration) bool {
	if t == nil || t.reset == nil {
		return false
	}
	return t.reset(d)
}

// Wall is the operating-system real-time clock.
type Wall struct{}

// NewWall returns the wall clock.
func NewWall() Wall { return Wall{} }

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// AfterFunc implements Clock using the runtime timer system.
func (Wall) AfterFunc(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: t.Stop, reset: t.Reset}
}

// Virtual is a manually advanced simulation clock and discrete-event
// scheduler. It is safe for concurrent use, although deterministic replay
// requires a single driving goroutine.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	events eventHeap
	seq    uint64 // tie-break so equal deadlines fire FIFO
	fired  uint64 // lifetime count of events popped for firing
}

// NewVirtual returns a virtual clock starting at the given epoch.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

// Epoch is the conventional start instant for simulations: an arbitrary but
// fixed date so traces are reproducible byte-for-byte.
var Epoch = time.Date(1996, time.August, 6, 9, 0, 0, 0, time.UTC)

// NewSim returns a virtual clock starting at Epoch.
func NewSim() *Virtual { return NewVirtual(Epoch) }

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// AfterFunc implements Clock. A non-positive d schedules fn at the current
// instant; it still fires from the driver, never synchronously.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.seq++
	ev := &event{at: v.now.Add(d), seq: v.seq, fn: fn}
	heap.Push(&v.events, ev)
	v.mu.Unlock()
	return &Timer{
		stop: func() bool {
			v.mu.Lock()
			defer v.mu.Unlock()
			if ev.cancelled || ev.index == -1 {
				return false
			}
			ev.cancelled = true
			heap.Remove(&v.events, ev.index)
			return true
		},
		reset: func(d time.Duration) bool {
			if d < 0 {
				d = 0
			}
			v.mu.Lock()
			defer v.mu.Unlock()
			wasPending := !ev.cancelled && ev.index >= 0
			ev.cancelled = false
			ev.at = v.now.Add(d)
			v.seq++
			ev.seq = v.seq // keep FIFO tie-breaking deterministic after re-arm
			if ev.index >= 0 {
				heap.Fix(&v.events, ev.index)
			} else {
				heap.Push(&v.events, ev)
			}
			return wasPending
		},
	}
}

// At schedules fn at absolute instant t (clamped to now when in the past).
func (v *Virtual) At(t time.Time, fn func()) *Timer {
	return v.AfterFunc(t.Sub(v.Now()), fn)
}

// popNextLocked pops the earliest event and advances now to its deadline.
// Caller holds v.mu and has checked the heap is non-empty.
func (v *Virtual) popNextLocked() *event {
	ev := heap.Pop(&v.events).(*event)
	if ev.at.After(v.now) {
		v.now = ev.at
	}
	v.fired++
	return ev
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// falls within the advanced span, in deadline order. Timers scheduled by
// fired callbacks are themselves fired if they fall within the span.
func (v *Virtual) Advance(d time.Duration) { v.AdvanceTo(v.Now().Add(d)) }

// AdvanceTo moves virtual time forward to t (no-op if t is not after now),
// firing due timers along the way. The driving loop takes the lock exactly
// once per fired event: peek, pop and time-advance happen under a single
// acquisition, then the callback runs unlocked.
func (v *Virtual) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if len(v.events) == 0 || v.events[0].at.After(t) {
			if t.After(v.now) {
				v.now = t
			}
			v.mu.Unlock()
			return
		}
		ev := v.popNextLocked()
		v.mu.Unlock()
		ev.fn()
	}
}

// Step fires the single earliest pending timer, advancing time to its
// deadline. It reports false when no timer is pending.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if len(v.events) == 0 {
		v.mu.Unlock()
		return false
	}
	ev := v.popNextLocked()
	v.mu.Unlock()
	ev.fn()
	return true
}

// Run fires timers in order until none remain or until the next deadline
// would exceed horizon. It returns the number of events fired. A zero
// horizon means run until idle. Like AdvanceTo, the loop costs one lock
// acquisition per fired event.
func (v *Virtual) Run(horizon time.Time) int {
	fired := 0
	for {
		v.mu.Lock()
		if len(v.events) == 0 {
			v.mu.Unlock()
			return fired
		}
		if !horizon.IsZero() && v.events[0].at.After(horizon) {
			if horizon.After(v.now) {
				v.now = horizon
			}
			v.mu.Unlock()
			return fired
		}
		ev := v.popNextLocked()
		v.mu.Unlock()
		ev.fn()
		fired++
	}
}

// RunFor runs the event loop for d of virtual time.
func (v *Virtual) RunFor(d time.Duration) int { return v.Run(v.Now().Add(d)) }

// RunUntilIdle fires every pending timer (including newly scheduled ones)
// until the queue drains, then returns the number fired.
func (v *Virtual) RunUntilIdle() int { return v.Run(time.Time{}) }

// NextDeadline reports the earliest pending timer deadline, and false when no
// timer is pending.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.events) == 0 {
		return time.Time{}, false
	}
	return v.events[0].at, true
}

// Pending reports the number of scheduled, unfired timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// FiredCount reports the lifetime number of events this clock has fired.
// The sharded driver uses deltas of this counter to report how many events a
// window ran without instrumenting the callbacks themselves.
func (v *Virtual) FiredCount() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fired
}

var (
	_ Clock = Wall{}
	_ Clock = (*Virtual)(nil)
)

// ShardedVirtual: a parallel discrete-event driver over N Virtual clocks.
//
// The single Virtual clock serializes the whole simulated world through one
// event heap and one driving goroutine. ShardedVirtual partitions the world:
// each shard owns its own Virtual (heap, now, seq) and is advanced by its own
// worker, so independent host groups simulate in parallel on real cores.
//
// Correctness rests on a conservative lookahead barrier, the classic
// Chandy–Misra–Bryant argument specialized to synchronous windows: if every
// cross-shard interaction carries at least `lookahead` of virtual latency
// (in this repo, the minimum cross-shard link propagation delay), then all
// shards may safely run a window of width `lookahead` in parallel — any
// cross-shard event generated inside the window lands at or after the
// window's end, never in a peer's past. Between windows the coordinator
// drains the cross-shard mailboxes into the destination heaps in a
// deterministic order (arrival time, then source shard, then per-source
// send order), so a given seed and shard assignment replays byte-identically
// regardless of GOMAXPROCS or how the OS interleaves the workers.
//
// With a single shard the driver degenerates to exactly the old semantics:
// Run delegates straight to the one Virtual's own loop, so shards=1
// reproduces the single-heap event order bit for bit.
package clock

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// parallelWorkers reports whether fanning a window out to per-shard
// goroutines can actually overlap on this runtime. With GOMAXPROCS=1 the
// coordinator runs the shards in-line instead, which produces the identical
// event order (windows are independent across shards) without the spawn
// overhead.
func parallelWorkers() bool { return runtime.GOMAXPROCS(0) > 1 }

// crossEvent is one cross-shard handoff: fn scheduled at absolute instant at
// on the destination shard.
type crossEvent struct {
	at time.Time
	fn func()
}

// ShardedVirtual drives N Virtual shards under a conservative-lookahead
// barrier. Shard clocks are handed to the components simulated on that
// shard; cross-shard work is injected with ScheduleCross.
type ShardedVirtual struct {
	shards    []*Virtual
	lookahead time.Duration

	// rows[src][dst] is the bounded mailbox of cross-shard events generated
	// by src for dst during the current window. Row src is written only by
	// shard src's worker (or by setup code before Run), and drained only by
	// the coordinator at the barrier, so no lock guards it: the window
	// barrier itself is the synchronization.
	rows [][][]crossEvent

	// windowEnd is the end of the window currently running; written by the
	// coordinator before workers start (happens-before via goroutine
	// creation), read by workers to clamp a too-early cross-shard arrival.
	windowEnd time.Time

	// mailboxCap is the soft bound on one mailbox row. A conservative
	// simulation cannot drop a handoff — that would change history — so the
	// bound is enforced as back-pressure accounting: crossings beyond the
	// cap are counted in overflows and the high-water mark records the
	// worst row, for the harness to alarm on.
	mailboxCap  int
	crossSent   atomic.Int64
	crossClamps atomic.Int64
	overflows   atomic.Int64
	mailHW      atomic.Int64

	rounds  int64
	scratch []crossEvent // coordinator-only drain buffer, reused across rounds
}

// DefaultMailboxCap bounds one source→destination mailbox row per window
// before overflow accounting kicks in.
const DefaultMailboxCap = 1 << 16

// NewShardedVirtual creates a driver over shards Virtual clocks starting at
// epoch. lookahead must be positive and no larger than the minimum
// cross-shard virtual latency the caller's workload guarantees.
func NewShardedVirtual(epoch time.Time, shards int, lookahead time.Duration) *ShardedVirtual {
	if shards < 1 {
		panic("clock: NewShardedVirtual needs at least one shard")
	}
	if lookahead <= 0 {
		panic("clock: NewShardedVirtual needs a positive lookahead")
	}
	sv := &ShardedVirtual{
		shards:     make([]*Virtual, shards),
		lookahead:  lookahead,
		rows:       make([][][]crossEvent, shards),
		mailboxCap: DefaultMailboxCap,
	}
	for i := range sv.shards {
		sv.shards[i] = NewVirtual(epoch)
		sv.rows[i] = make([][]crossEvent, shards)
	}
	return sv
}

// NewShardedSim returns a sharded driver starting at the conventional Epoch.
func NewShardedSim(shards int, lookahead time.Duration) *ShardedVirtual {
	return NewShardedVirtual(Epoch, shards, lookahead)
}

// Shards reports the shard count.
func (sv *ShardedVirtual) Shards() int { return len(sv.shards) }

// Lookahead reports the conservative window width.
func (sv *ShardedVirtual) Lookahead() time.Duration { return sv.lookahead }

// Shard returns shard i's clock. Components simulated on shard i must use
// this clock for all their timers; their callbacks then run on shard i's
// worker, serialized with everything else on the shard.
func (sv *ShardedVirtual) Shard(i int) *Virtual { return sv.shards[i] }

// SetMailboxCap overrides the soft per-row mailbox bound.
func (sv *ShardedVirtual) SetMailboxCap(n int) {
	if n > 0 {
		sv.mailboxCap = n
	}
}

// Now returns the group floor: the minimum shard time. Between windows every
// shard sits exactly at the floor; while a window runs, shards may be up to
// lookahead ahead of it.
func (sv *ShardedVirtual) Now() time.Time {
	floor := sv.shards[0].Now()
	for _, s := range sv.shards[1:] {
		if t := s.Now(); t.Before(floor) {
			floor = t
		}
	}
	return floor
}

// Since returns the duration elapsed since t on the group floor.
func (sv *ShardedVirtual) Since(t time.Time) time.Duration { return sv.Now().Sub(t) }

// Pending reports scheduled-but-unfired events across all shards plus
// undelivered cross-shard mail.
func (sv *ShardedVirtual) Pending() int {
	n := 0
	for _, s := range sv.shards {
		n += s.Pending()
	}
	for _, row := range sv.rows {
		for _, cell := range row {
			n += len(cell)
		}
	}
	return n
}

// ScheduleCross injects fn at absolute instant at on shard dst, on behalf of
// shard src. It must be called either from shard src's worker (the normal
// case: a Send fired by one of src's events) or from setup code before the
// driver runs. An arrival earlier than the running window's end would land
// in the destination's past; it is clamped to the window end and counted —
// with a correctly chosen lookahead the clamp never fires.
func (sv *ShardedVirtual) ScheduleCross(src, dst int, at time.Time, fn func()) {
	if src == dst {
		sv.shards[dst].At(at, fn)
		return
	}
	if we := sv.windowEnd; !we.IsZero() && at.Before(we) {
		at = we
		sv.crossClamps.Add(1)
	}
	row := append(sv.rows[src][dst], crossEvent{at: at, fn: fn})
	sv.rows[src][dst] = row
	sv.crossSent.Add(1)
	if n := int64(len(row)); n > sv.mailboxCap64() {
		sv.overflows.Add(1)
	}
	for {
		hw := sv.mailHW.Load()
		if int64(len(row)) <= hw || sv.mailHW.CompareAndSwap(hw, int64(len(row))) {
			break
		}
	}
}

func (sv *ShardedVirtual) mailboxCap64() int64 { return int64(sv.mailboxCap) }

// CrossStats reports cross-shard traffic accounting: handoffs enqueued,
// arrivals clamped to a window edge (0 when the lookahead honors the
// workload's true minimum latency), soft-bound overflows, the worst single
// mailbox row, and barrier rounds driven.
func (sv *ShardedVirtual) CrossStats() (sent, clamps, overflows, highWater, rounds int64) {
	return sv.crossSent.Load(), sv.crossClamps.Load(), sv.overflows.Load(), sv.mailHW.Load(), sv.rounds
}

// drainMail moves every pending cross-shard event into its destination heap.
// Coordinator-only. Events for one destination are sorted by arrival time
// with ties broken by (source shard, send order) — the iteration order below
// plus a stable sort — so heap insertion order, and therefore FIFO
// tie-breaking, is identical on every replay.
func (sv *ShardedVirtual) drainMail() {
	n := len(sv.shards)
	for dst := 0; dst < n; dst++ {
		batch := sv.scratch[:0]
		for src := 0; src < n; src++ {
			cell := sv.rows[src][dst]
			if len(cell) == 0 {
				continue
			}
			batch = append(batch, cell...)
			sv.rows[src][dst] = cell[:0]
		}
		if len(batch) == 0 {
			continue
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].at.Before(batch[j].at) })
		d := sv.shards[dst]
		for i := range batch {
			d.At(batch[i].at, batch[i].fn)
			batch[i].fn = nil
		}
		sv.scratch = batch[:0]
	}
}

// nextDeadline returns the earliest pending deadline across shards.
func (sv *ShardedVirtual) nextDeadline() (time.Time, bool) {
	var next time.Time
	ok := false
	for _, s := range sv.shards {
		if d, has := s.NextDeadline(); has && (!ok || d.Before(next)) {
			next, ok = d, true
		}
	}
	return next, ok
}

// runWindow advances every shard to end in parallel, one worker per shard.
// On a single-CPU runtime the goroutine fan-out is skipped: the shards run
// in index order on the coordinator, which is observably identical (each
// window's shard computations are independent by the lookahead argument).
func (sv *ShardedVirtual) runWindow(end time.Time, parallel bool) {
	sv.windowEnd = end
	if !parallel {
		for _, s := range sv.shards {
			s.AdvanceTo(end)
		}
		return
	}
	var wg sync.WaitGroup
	for _, s := range sv.shards {
		wg.Add(1)
		go func(s *Virtual) {
			defer wg.Done()
			s.AdvanceTo(end)
		}(s)
	}
	wg.Wait()
}

// Run drives the simulation until no work remains or the next deadline would
// exceed horizon (zero horizon = run until idle), returning the number of
// events fired. Each iteration picks the earliest pending deadline T across
// shards, runs the window [T, T+lookahead] on all shards in parallel, then
// drains the cross-shard mailboxes at the barrier. Windows jump over idle
// gaps: the next window always starts at the next real event.
func (sv *ShardedVirtual) Run(horizon time.Time) int {
	sv.drainMail()
	if len(sv.shards) == 1 {
		return sv.shards[0].Run(horizon)
	}
	parallel := parallelWorkers()
	fired0 := sv.totalFired()
	for {
		next, ok := sv.nextDeadline()
		if !ok {
			break
		}
		if !horizon.IsZero() && next.After(horizon) {
			// Nothing due inside the horizon: advance the whole group's
			// clocks to it, exactly as Virtual.Run does.
			sv.runWindow(horizon, false)
			break
		}
		end := next.Add(sv.lookahead)
		if !horizon.IsZero() && end.After(horizon) {
			end = horizon
		}
		sv.runWindow(end, parallel)
		sv.rounds++
		sv.drainMail()
	}
	return int(sv.totalFired() - fired0)
}

// RunFor runs the event loop for d of virtual time past the current floor.
func (sv *ShardedVirtual) RunFor(d time.Duration) int { return sv.Run(sv.Now().Add(d)) }

// RunUntilIdle fires every pending event (including newly scheduled ones)
// until all shards drain, then returns the number fired.
func (sv *ShardedVirtual) RunUntilIdle() int { return sv.Run(time.Time{}) }

func (sv *ShardedVirtual) totalFired() uint64 {
	var n uint64
	for _, s := range sv.shards {
		n += s.FiredCount()
	}
	return n
}

// String summarizes the driver state for debug output.
func (sv *ShardedVirtual) String() string {
	sent, clamps, over, hw, rounds := sv.CrossStats()
	return fmt.Sprintf("ShardedVirtual{shards=%d lookahead=%s rounds=%d cross=%d clamps=%d overflows=%d mailHW=%d}",
		len(sv.shards), sv.lookahead, rounds, sent, clamps, over, hw)
}

// Package rtp implements the Real-time Transport Protocol and its control
// protocol RTCP per RFC 1889 (the 1995 Internet-Draft the paper cites as
// [SCH 95]): RTP data packet marshaling, RTCP sender/receiver reports with
// the standard interarrival-jitter estimator and fraction-lost computation,
// and per-stream sender/receiver session state.
//
// The service uses RTP for time-sensitive media (audio/video) and the
// presentation scenario, and RTCP receiver reports as the feedback channel
// that drives the server's quality-grading decisions.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP protocol version implemented (RFC 1889).
const Version = 2

// HeaderSize is the fixed RTP header size without CSRCs.
const HeaderSize = 12

// PayloadType identifies the media coding of an RTP packet. Values follow
// the RFC 1890 static audio/video profile where one exists.
type PayloadType uint8

// Payload types used by the service.
const (
	PTPCM      PayloadType = 0   // PCMU audio
	PTADPCM    PayloadType = 5   // DVI4/ADPCM audio
	PTVADPCM   PayloadType = 6   // variable-rate ADPCM (profile-specific)
	PTJPEG     PayloadType = 26  // JPEG stills
	PTMPEG     PayloadType = 32  // MPEG video
	PTAVI      PayloadType = 97  // dynamic: AVI-wrapped video
	PTScenario PayloadType = 100 // dynamic: HML presentation scenario
	PTGIF      PayloadType = 101 // dynamic: GIF stills
	PTText     PayloadType = 102 // dynamic: text content
)

func (pt PayloadType) String() string {
	switch pt {
	case PTPCM:
		return "PCM"
	case PTADPCM:
		return "ADPCM"
	case PTVADPCM:
		return "VADPCM"
	case PTJPEG:
		return "JPEG"
	case PTMPEG:
		return "MPEG"
	case PTAVI:
		return "AVI"
	case PTScenario:
		return "scenario"
	case PTGIF:
		return "GIF"
	case PTText:
		return "text"
	default:
		return fmt.Sprintf("PT%d", uint8(pt))
	}
}

// Packet is one RTP data packet.
type Packet struct {
	// Marker flags a significant event (end of a frame for video, start
	// of a talkspurt for audio).
	Marker bool
	// PayloadType is the media coding.
	PayloadType PayloadType
	// SequenceNumber increments by one per packet, wrapping at 2^16.
	SequenceNumber uint16
	// Timestamp is the sampling instant in media clock units.
	Timestamp uint32
	// SSRC identifies the synchronization source (one per stream).
	SSRC uint32
	// Payload is the media data.
	Payload []byte
}

// Marshal encodes the packet into RFC 1889 wire format.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, 0, HeaderSize+len(p.Payload))
	return p.AppendTo(buf)
}

// AppendTo appends the packet's wire encoding (header then payload) to dst
// and returns the extended slice. It allocates only when dst lacks capacity,
// which is how the sender hot path assembles packets into pooled buffers.
func (p *Packet) AppendTo(dst []byte) []byte {
	dst = AppendHeader(dst, p.Marker, p.PayloadType, p.SequenceNumber, p.Timestamp, p.SSRC)
	return append(dst, p.Payload...)
}

// AppendHeader appends a 12-byte RTP header with the given fields to dst.
func AppendHeader(dst []byte, marker bool, pt PayloadType, seq uint16, ts, ssrc uint32) []byte {
	b1 := uint8(pt) & 0x7f
	if marker {
		b1 |= 0x80
	}
	return append(dst,
		Version<<6, // V=2, P=0, X=0, CC=0
		b1,
		byte(seq>>8), byte(seq),
		byte(ts>>24), byte(ts>>16), byte(ts>>8), byte(ts),
		byte(ssrc>>24), byte(ssrc>>16), byte(ssrc>>8), byte(ssrc),
	)
}

// ErrMalformed reports an undecodable RTP/RTCP packet.
var ErrMalformed = errors.New("rtp: malformed packet")

// Unmarshal decodes an RTP packet from wire format. The returned packet's
// Payload is a zero-copy view into buf: it stays valid only as long as the
// caller owns buf. Receivers that hand the buffer back to a transport (or a
// pool) after the handler returns must copy whatever payload bytes they
// keep — the client's frame reassembly copies fragments into its own pooled
// scratch for exactly this reason.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	if v := buf[0] >> 6; v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	cc := int(buf[0] & 0x0f)
	hdr := HeaderSize + 4*cc
	if len(buf) < hdr {
		return nil, fmt.Errorf("%w: truncated CSRC list", ErrMalformed)
	}
	p := &Packet{
		Marker:         buf[1]&0x80 != 0,
		PayloadType:    PayloadType(buf[1] & 0x7f),
		SequenceNumber: binary.BigEndian.Uint16(buf[2:]),
		Timestamp:      binary.BigEndian.Uint32(buf[4:]),
		SSRC:           binary.BigEndian.Uint32(buf[8:]),
	}
	p.Payload = buf[hdr:]
	return p, nil
}

package rtp

import (
	"encoding/binary"
	"fmt"
	"time"
)

// RTCP packet types (RFC 1889 §6).
const (
	TypeSR   = 200 // sender report
	TypeRR   = 201 // receiver report
	TypeSDES = 202 // source description
	TypeBYE  = 203 // goodbye
)

// ReceptionReport is one reception report block of an SR/RR: the per-source
// statistics the paper's Client QoS Manager feeds back to the server
// ("packet's transmission delay, delay jitter and packet loss").
type ReceptionReport struct {
	// SSRC identifies the source this block reports on.
	SSRC uint32
	// FractionLost is the fraction of packets lost since the previous
	// report, in 1/256 units.
	FractionLost uint8
	// CumulativeLost is the total packets lost for the whole session
	// (24-bit signed in the wire format).
	CumulativeLost int32
	// ExtendedHighSeq is the highest sequence number received, extended
	// with the wrap count in the top 16 bits.
	ExtendedHighSeq uint32
	// Jitter is the interarrival jitter estimate in timestamp units.
	Jitter uint32
	// LastSR and DelaySinceLastSR support RTT estimation (middle 32 bits
	// of the SR NTP timestamp, and the delay in 1/65536 s units).
	LastSR           uint32
	DelaySinceLastSR uint32
}

// LossFraction converts FractionLost to a float in [0,1].
func (r *ReceptionReport) LossFraction() float64 { return float64(r.FractionLost) / 256 }

// SenderReport is an RTCP SR.
type SenderReport struct {
	SSRC        uint32
	NTPTime     uint64 // 64-bit NTP timestamp
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReceptionReport
}

// ReceiverReport is an RTCP RR.
type ReceiverReport struct {
	SSRC    uint32 // the reporting receiver
	Reports []ReceptionReport
}

// Goodbye is an RTCP BYE.
type Goodbye struct {
	SSRC   uint32
	Reason string
}

// SourceDescription is an RTCP SDES carrying a single CNAME item.
type SourceDescription struct {
	SSRC  uint32
	CNAME string
}

const rrBlockSize = 24

func marshalHeader(buf []byte, count int, ptype uint8, words int) {
	buf[0] = Version<<6 | uint8(count&0x1f)
	buf[1] = ptype
	binary.BigEndian.PutUint16(buf[2:], uint16(words))
}

func marshalReport(buf []byte, r *ReceptionReport) {
	binary.BigEndian.PutUint32(buf[0:], r.SSRC)
	cum := uint32(r.CumulativeLost) & 0x00ffffff
	binary.BigEndian.PutUint32(buf[4:], uint32(r.FractionLost)<<24|cum)
	binary.BigEndian.PutUint32(buf[8:], r.ExtendedHighSeq)
	binary.BigEndian.PutUint32(buf[12:], r.Jitter)
	binary.BigEndian.PutUint32(buf[16:], r.LastSR)
	binary.BigEndian.PutUint32(buf[20:], r.DelaySinceLastSR)
}

func unmarshalReport(buf []byte) ReceptionReport {
	word := binary.BigEndian.Uint32(buf[4:])
	cum := int32(word & 0x00ffffff)
	if cum&0x00800000 != 0 { // sign-extend 24-bit
		cum |= ^int32(0x00ffffff)
	}
	return ReceptionReport{
		SSRC:             binary.BigEndian.Uint32(buf[0:]),
		FractionLost:     uint8(word >> 24),
		CumulativeLost:   cum,
		ExtendedHighSeq:  binary.BigEndian.Uint32(buf[8:]),
		Jitter:           binary.BigEndian.Uint32(buf[12:]),
		LastSR:           binary.BigEndian.Uint32(buf[16:]),
		DelaySinceLastSR: binary.BigEndian.Uint32(buf[20:]),
	}
}

// Marshal encodes the sender report.
func (sr *SenderReport) Marshal() []byte {
	n := len(sr.Reports)
	size := 28 + n*rrBlockSize
	buf := make([]byte, size)
	marshalHeader(buf, n, TypeSR, size/4-1)
	binary.BigEndian.PutUint32(buf[4:], sr.SSRC)
	binary.BigEndian.PutUint64(buf[8:], sr.NTPTime)
	binary.BigEndian.PutUint32(buf[16:], sr.RTPTime)
	binary.BigEndian.PutUint32(buf[20:], sr.PacketCount)
	binary.BigEndian.PutUint32(buf[24:], sr.OctetCount)
	for i := range sr.Reports {
		marshalReport(buf[28+i*rrBlockSize:], &sr.Reports[i])
	}
	return buf
}

// Marshal encodes the receiver report.
func (rr *ReceiverReport) Marshal() []byte {
	n := len(rr.Reports)
	size := 8 + n*rrBlockSize
	buf := make([]byte, size)
	marshalHeader(buf, n, TypeRR, size/4-1)
	binary.BigEndian.PutUint32(buf[4:], rr.SSRC)
	for i := range rr.Reports {
		marshalReport(buf[8+i*rrBlockSize:], &rr.Reports[i])
	}
	return buf
}

// Marshal encodes the BYE packet.
func (g *Goodbye) Marshal() []byte {
	reason := []byte(g.Reason)
	pad := (4 - (len(reason)+1)%4) % 4
	size := 8 + 1 + len(reason) + pad
	buf := make([]byte, size)
	marshalHeader(buf, 1, TypeBYE, size/4-1)
	binary.BigEndian.PutUint32(buf[4:], g.SSRC)
	buf[8] = byte(len(reason))
	copy(buf[9:], reason)
	return buf
}

// Marshal encodes the SDES packet with one CNAME item.
func (sd *SourceDescription) Marshal() []byte {
	cname := []byte(sd.CNAME)
	itemLen := 2 + len(cname)     // type + len + text
	pad := 4 - (4+itemLen)%4      // chunk padded to 32 bits incl. null
	size := 4 + 4 + itemLen + pad // header + SSRC + item + padding
	buf := make([]byte, size)
	marshalHeader(buf, 1, TypeSDES, size/4-1)
	binary.BigEndian.PutUint32(buf[4:], sd.SSRC)
	buf[8] = 1 // CNAME
	buf[9] = byte(len(cname))
	copy(buf[10:], cname)
	return buf
}

// ControlPacket is the union of decoded RTCP packets.
type ControlPacket struct {
	SR   *SenderReport
	RR   *ReceiverReport
	SDES *SourceDescription
	BYE  *Goodbye
}

// UnmarshalControl decodes a single RTCP packet (compound packets: call
// repeatedly via SplitCompound).
func UnmarshalControl(buf []byte) (*ControlPacket, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: rtcp %d bytes", ErrMalformed, len(buf))
	}
	if v := buf[0] >> 6; v != Version {
		return nil, fmt.Errorf("%w: rtcp version %d", ErrMalformed, v)
	}
	count := int(buf[0] & 0x1f)
	ptype := buf[1]
	words := int(binary.BigEndian.Uint16(buf[2:]))
	if len(buf) < (words+1)*4 {
		return nil, fmt.Errorf("%w: rtcp truncated", ErrMalformed)
	}
	switch ptype {
	case TypeSR:
		if len(buf) < 28+count*rrBlockSize {
			return nil, fmt.Errorf("%w: SR truncated", ErrMalformed)
		}
		sr := &SenderReport{
			SSRC:        binary.BigEndian.Uint32(buf[4:]),
			NTPTime:     binary.BigEndian.Uint64(buf[8:]),
			RTPTime:     binary.BigEndian.Uint32(buf[16:]),
			PacketCount: binary.BigEndian.Uint32(buf[20:]),
			OctetCount:  binary.BigEndian.Uint32(buf[24:]),
		}
		for i := 0; i < count; i++ {
			sr.Reports = append(sr.Reports, unmarshalReport(buf[28+i*rrBlockSize:]))
		}
		return &ControlPacket{SR: sr}, nil
	case TypeRR:
		if len(buf) < 8+count*rrBlockSize {
			return nil, fmt.Errorf("%w: RR truncated", ErrMalformed)
		}
		rr := &ReceiverReport{SSRC: binary.BigEndian.Uint32(buf[4:])}
		for i := 0; i < count; i++ {
			rr.Reports = append(rr.Reports, unmarshalReport(buf[8+i*rrBlockSize:]))
		}
		return &ControlPacket{RR: rr}, nil
	case TypeSDES:
		if len(buf) < 10 {
			return nil, fmt.Errorf("%w: SDES truncated", ErrMalformed)
		}
		n := int(buf[9])
		if len(buf) < 10+n {
			return nil, fmt.Errorf("%w: SDES item truncated", ErrMalformed)
		}
		return &ControlPacket{SDES: &SourceDescription{
			SSRC:  binary.BigEndian.Uint32(buf[4:]),
			CNAME: string(buf[10 : 10+n]),
		}}, nil
	case TypeBYE:
		g := &Goodbye{SSRC: binary.BigEndian.Uint32(buf[4:])}
		if len(buf) > 8 {
			n := int(buf[8])
			if len(buf) >= 9+n {
				g.Reason = string(buf[9 : 9+n])
			}
		}
		return &ControlPacket{BYE: g}, nil
	default:
		return nil, fmt.Errorf("%w: rtcp type %d", ErrMalformed, ptype)
	}
}

// SplitCompound splits a compound RTCP datagram into individual packets.
func SplitCompound(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: compound remainder %d bytes", ErrMalformed, len(buf))
		}
		words := int(binary.BigEndian.Uint16(buf[2:]))
		size := (words + 1) * 4
		if len(buf) < size {
			return nil, fmt.Errorf("%w: compound truncated", ErrMalformed)
		}
		out = append(out, buf[:size])
		buf = buf[size:]
	}
	return out, nil
}

// NTPTime converts a wall instant to the 64-bit NTP timestamp format used by
// sender reports.
func NTPTime(t time.Time) uint64 {
	const ntpEpochOffset = 2208988800 // seconds between 1900 and 1970
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) * (1 << 32) / 1_000_000_000
	return secs<<32 | frac
}

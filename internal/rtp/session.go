package rtp

import (
	"time"
)

// ClockRate is the media timestamp clock used throughout the service.
// RFC 1890 mandates 90 kHz for video; we use it uniformly so jitter values
// from different streams are comparable.
const ClockRate = 90000

// ToTimestamp converts a scenario-relative duration to RTP timestamp units.
func ToTimestamp(d time.Duration) uint32 {
	return uint32(int64(d) * ClockRate / int64(time.Second))
}

// FromTimestamp converts RTP timestamp units back to a duration.
func FromTimestamp(ts uint32) time.Duration {
	return time.Duration(int64(ts) * int64(time.Second) / ClockRate)
}

// Sender tracks one outgoing RTP stream's state: sequence numbers,
// timestamps and the counters carried by sender reports.
type Sender struct {
	SSRC        uint32
	PayloadType PayloadType
	seq         uint16
	packets     uint32
	octets      uint32
}

// NewSender creates a sender with the given SSRC and initial sequence
// number.
func NewSender(ssrc uint32, pt PayloadType, firstSeq uint16) *Sender {
	return &Sender{SSRC: ssrc, PayloadType: pt, seq: firstSeq}
}

// Next builds the next data packet for payload sampled at media time ts.
func (s *Sender) Next(ts time.Duration, payload []byte, marker bool) *Packet {
	p := &Packet{
		Marker:         marker,
		PayloadType:    s.PayloadType,
		SequenceNumber: s.seq,
		Timestamp:      ToTimestamp(ts),
		SSRC:           s.SSRC,
		Payload:        payload,
	}
	s.advance(len(payload))
	return p
}

// AppendNext appends the next data packet's 12-byte header to dst and
// accounts for a payload of payloadLen bytes, advancing the sequence number
// and the sender-report counters exactly as Next does. The caller appends
// the payload itself — this is the allocation-free half of single-pass
// packet assembly: RTP header, frame header and payload land in one pooled
// buffer with no intermediate slices.
func (s *Sender) AppendNext(dst []byte, ts time.Duration, marker bool, payloadLen int) []byte {
	dst = AppendHeader(dst, marker, s.PayloadType, s.seq, ToTimestamp(ts), s.SSRC)
	s.advance(payloadLen)
	return dst
}

func (s *Sender) advance(payloadLen int) {
	s.seq++
	s.packets++
	s.octets += uint32(payloadLen)
}

// Report builds a sender report at wall time now with media time ts.
func (s *Sender) Report(now time.Time, ts time.Duration) *SenderReport {
	return &SenderReport{
		SSRC:        s.SSRC,
		NTPTime:     NTPTime(now),
		RTPTime:     ToTimestamp(ts),
		PacketCount: s.packets,
		OctetCount:  s.octets,
	}
}

// PacketCount returns the number of packets sent.
func (s *Sender) PacketCount() uint32 { return s.packets }

// Seq returns the sequence number the next packet will carry.
func (s *Sender) Seq() uint16 { return s.seq }

// Fork returns an independent copy of the sender's full transmission state:
// same SSRC, payload type, next sequence number and report counters. A
// receiver that switches from the original to the fork (or vice versa) sees
// one seamless stream — this is how a shared-flow subscriber detaches onto a
// private sender without a sequence or timestamp discontinuity.
func (s *Sender) Fork() *Sender {
	cp := *s
	return &cp
}

// Receiver tracks one incoming RTP stream and computes the RFC 1889
// reception statistics: extended highest sequence number (with wraparound),
// cumulative and interval loss, and the standard interarrival jitter
// estimator (RFC 1889 §A.8):
//
//	D = (Rj - Ri) - (Sj - Si)
//	J += (|D| - J) / 16
type Receiver struct {
	SSRC uint32 // remote source

	initialized bool
	baseSeq     uint32
	maxSeq      uint16
	cycles      uint32
	received    uint32

	// jitter state
	lastTransit time.Duration
	jitter      float64 // in timestamp units

	// interval state for fraction-lost
	expectedPrior uint32
	receivedPrior uint32

	// delay accounting (one-way transit, comparable only with
	// synchronized clocks — true in simulation, approximate otherwise)
	lastDelay time.Duration
}

// NewReceiver tracks packets from the given source SSRC.
func NewReceiver(ssrc uint32) *Receiver { return &Receiver{SSRC: ssrc} }

// Observe processes one arrived packet. arrival is the local receive time
// and sent is the sender's wall-clock send time when known (zero time means
// unknown: delay statistics are skipped, jitter still works since it only
// uses timestamps).
func (r *Receiver) Observe(p *Packet, arrival time.Time, sent time.Time) {
	seq := p.SequenceNumber
	if !r.initialized {
		r.initialized = true
		r.baseSeq = uint32(seq)
		r.maxSeq = seq
	} else {
		// Detect wraparound: a big backwards jump means the 16-bit
		// counter cycled.
		if seq < r.maxSeq && r.maxSeq-seq > 0x8000 {
			r.cycles += 1 << 16
			r.maxSeq = seq
		} else if seq > r.maxSeq || r.maxSeq-seq > 0x8000 {
			r.maxSeq = seq
		}
	}
	r.received++

	// Jitter: compare arrival spacing to timestamp spacing.
	arrivalTS := time.Duration(arrival.UnixNano()) // monotonic enough within a session
	transit := arrivalTS - FromTimestamp(p.Timestamp)
	if r.lastTransit != 0 {
		d := transit - r.lastTransit
		if d < 0 {
			d = -d
		}
		dTS := float64(ToTimestamp(d))
		r.jitter += (dTS - r.jitter) / 16
	}
	r.lastTransit = transit

	if !sent.IsZero() {
		r.lastDelay = arrival.Sub(sent)
	}
}

// ExtendedHighSeq returns the RFC 1889 extended highest sequence number.
func (r *Receiver) ExtendedHighSeq() uint32 { return r.cycles + uint32(r.maxSeq) }

// Expected returns the number of packets the receiver should have seen.
func (r *Receiver) Expected() uint32 {
	if !r.initialized {
		return 0
	}
	return r.ExtendedHighSeq() - r.baseSeq + 1
}

// Received returns the number of packets actually seen.
func (r *Receiver) Received() uint32 { return r.received }

// CumulativeLost returns total losses over the session (may be negative
// with duplicates; clamped at 0 here since the simulator never duplicates).
func (r *Receiver) CumulativeLost() int32 {
	lost := int64(r.Expected()) - int64(r.received)
	if lost < 0 {
		lost = 0
	}
	return int32(lost)
}

// Jitter returns the current interarrival jitter estimate in timestamp
// units.
func (r *Receiver) Jitter() uint32 { return uint32(r.jitter) }

// JitterDuration returns the jitter estimate as a time duration.
func (r *Receiver) JitterDuration() time.Duration { return FromTimestamp(uint32(r.jitter)) }

// LastDelay returns the most recent one-way transit estimate.
func (r *Receiver) LastDelay() time.Duration { return r.lastDelay }

// Report builds this source's reception report block and resets the
// interval counters (fraction lost covers the span since the previous
// Report call, per RFC 1889 §A.3).
func (r *Receiver) Report() ReceptionReport {
	expected := r.Expected()
	expectedInt := expected - r.expectedPrior
	receivedInt := r.received - r.receivedPrior
	r.expectedPrior = expected
	r.receivedPrior = r.received
	var fraction uint8
	if expectedInt > 0 && expectedInt > receivedInt {
		fraction = uint8((expectedInt - receivedInt) * 256 / expectedInt)
	}
	return ReceptionReport{
		SSRC:            r.SSRC,
		FractionLost:    fraction,
		CumulativeLost:  r.CumulativeLost(),
		ExtendedHighSeq: r.ExtendedHighSeq(),
		Jitter:          r.Jitter(),
	}
}

package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Marker:         true,
		PayloadType:    PTMPEG,
		SequenceNumber: 0xBEEF,
		Timestamp:      0x12345678,
		SSRC:           0xCAFEBABE,
		Payload:        []byte("frame data"),
	}
	buf := p.Marshal()
	if len(buf) != HeaderSize+len(p.Payload) {
		t.Fatalf("wire size = %d", len(buf))
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Marker != p.Marker || q.PayloadType != p.PayloadType ||
		q.SequenceNumber != p.SequenceNumber || q.Timestamp != p.Timestamp ||
		q.SSRC != p.SSRC || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip: %+v vs %+v", q, p)
	}
}

func TestPacketVersionBits(t *testing.T) {
	p := &Packet{PayloadType: PTPCM}
	buf := p.Marshal()
	if buf[0]>>6 != 2 {
		t.Fatalf("version bits = %d", buf[0]>>6)
	}
	buf[0] = 1 << 6 // wrong version
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("accepted wrong version")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short packet")
	}
	// CSRC count beyond buffer.
	buf := make([]byte, HeaderSize)
	buf[0] = Version<<6 | 5
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("accepted truncated CSRC list")
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := &Packet{
			Marker: marker, PayloadType: PayloadType(pt & 0x7f),
			SequenceNumber: seq, Timestamp: ts, SSRC: ssrc, Payload: payload,
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return q.Marker == p.Marker && q.PayloadType == p.PayloadType &&
			q.SequenceNumber == p.SequenceNumber && q.Timestamp == p.Timestamp &&
			q.SSRC == p.SSRC && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAppendToMatchesMarshal: the append-style encoder is the single-pass
// assembly primitive; its bytes must be identical to Marshal's, including
// when appending after an existing prefix.
func TestAppendToMatchesMarshal(t *testing.T) {
	p := &Packet{
		Marker: true, PayloadType: PTJPEG, SequenceNumber: 7,
		Timestamp: 90000, SSRC: 0x1996, Payload: []byte("still bytes"),
	}
	if !bytes.Equal(p.AppendTo(nil), p.Marshal()) {
		t.Fatal("AppendTo(nil) differs from Marshal")
	}
	prefix := []byte("prefix-")
	out := p.AppendTo(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], p.Marshal()) {
		t.Fatal("AppendTo after a prefix corrupted the encoding")
	}
}

// TestAppendNextMatchesNext: a sender driven through the allocation-free
// AppendNext path must produce the same wire bytes and the same counters as
// one driven through Next+Marshal.
func TestAppendNextMatchesNext(t *testing.T) {
	a := NewSender(0xAB, PTMPEG, 65533)
	b := NewSender(0xAB, PTMPEG, 65533)
	payloads := [][]byte{[]byte("i-frame"), []byte("p"), nil, []byte("bigger payload here")}
	for i, pl := range payloads {
		ts := time.Duration(i) * 40 * time.Millisecond
		marker := i%2 == 0
		want := a.Next(ts, pl, marker).Marshal()
		got := b.AppendNext(nil, ts, marker, len(pl))
		got = append(got, pl...)
		if !bytes.Equal(got, want) {
			t.Fatalf("packet %d: AppendNext wire bytes differ from Next", i)
		}
	}
	ra, rb := a.Report(time.Time{}, 0), b.Report(time.Time{}, 0)
	if ra.PacketCount != rb.PacketCount || ra.OctetCount != rb.OctetCount {
		t.Fatalf("counters diverged: %d/%d vs %d/%d",
			ra.PacketCount, ra.OctetCount, rb.PacketCount, rb.OctetCount)
	}
}

// TestUnmarshalZeroCopy pins the receive-path contract: the decoded Payload
// is a view into the input buffer (no per-packet copy), so callers that keep
// it must copy — and callers that don't get it for free.
func TestUnmarshalZeroCopy(t *testing.T) {
	p := &Packet{PayloadType: PTPCM, Payload: []byte("audio")}
	buf := p.Marshal()
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Payload) == 0 || &q.Payload[0] != &buf[HeaderSize] {
		t.Fatal("Unmarshal copied the payload; it must return a view into the input")
	}
	buf[HeaderSize] = 'X'
	if q.Payload[0] != 'X' {
		t.Fatal("payload view detached from the input buffer")
	}
}

func TestPayloadTypeNames(t *testing.T) {
	for _, pt := range []PayloadType{PTPCM, PTADPCM, PTVADPCM, PTJPEG, PTMPEG, PTAVI, PTScenario, PTGIF, PTText} {
		if s := pt.String(); s == "" || s[0] == 'P' && s[1] == 'T' && pt != PTPCM {
			// only unknown types render as PTn
			if s == "" {
				t.Errorf("PT %d has empty name", pt)
			}
		}
	}
	if PayloadType(77).String() != "PT77" {
		t.Fatal("unknown PT name wrong")
	}
}

func TestSenderSequencing(t *testing.T) {
	s := NewSender(42, PTMPEG, 65534)
	p1 := s.Next(0, []byte("a"), false)
	p2 := s.Next(time.Second, []byte("b"), false)
	p3 := s.Next(2*time.Second, []byte("c"), true)
	if p1.SequenceNumber != 65534 || p2.SequenceNumber != 65535 || p3.SequenceNumber != 0 {
		t.Fatalf("seqs = %d,%d,%d", p1.SequenceNumber, p2.SequenceNumber, p3.SequenceNumber)
	}
	if s.PacketCount() != 3 {
		t.Fatalf("count = %d", s.PacketCount())
	}
	if p2.Timestamp != ClockRate {
		t.Fatalf("ts = %d, want %d", p2.Timestamp, ClockRate)
	}
	sr := s.Report(time.Unix(1000, 0), 2*time.Second)
	if sr.PacketCount != 3 || sr.OctetCount != 3 {
		t.Fatalf("SR = %+v", sr)
	}
}

func TestTimestampConversion(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, time.Second, 90 * time.Second} {
		ts := ToTimestamp(d)
		back := FromTimestamp(ts)
		if diff := back - d; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("conversion %v → %d → %v", d, ts, back)
		}
	}
}

func TestReceiverLossAccounting(t *testing.T) {
	r := NewReceiver(7)
	at := time.Unix(100, 0)
	// Deliver seqs 0,1,2,4,5 (3 lost).
	for _, seq := range []uint16{0, 1, 2, 4, 5} {
		p := &Packet{SequenceNumber: seq, Timestamp: uint32(seq) * 3000, SSRC: 7}
		r.Observe(p, at, time.Time{})
		at = at.Add(33 * time.Millisecond)
	}
	if r.Expected() != 6 || r.Received() != 5 {
		t.Fatalf("expected/received = %d/%d", r.Expected(), r.Received())
	}
	if r.CumulativeLost() != 1 {
		t.Fatalf("lost = %d", r.CumulativeLost())
	}
	rep := r.Report()
	if rep.CumulativeLost != 1 || rep.ExtendedHighSeq != 5 {
		t.Fatalf("report = %+v", rep)
	}
	// fraction = 1/6 * 256 ≈ 42
	if rep.FractionLost < 40 || rep.FractionLost > 44 {
		t.Fatalf("fraction = %d", rep.FractionLost)
	}
	// Second interval with no loss → fraction 0.
	for _, seq := range []uint16{6, 7, 8} {
		r.Observe(&Packet{SequenceNumber: seq, Timestamp: uint32(seq) * 3000}, at, time.Time{})
		at = at.Add(33 * time.Millisecond)
	}
	rep2 := r.Report()
	if rep2.FractionLost != 0 {
		t.Fatalf("interval fraction = %d", rep2.FractionLost)
	}
}

func TestReceiverSequenceWraparound(t *testing.T) {
	r := NewReceiver(7)
	at := time.Unix(100, 0)
	for _, seq := range []uint16{65533, 65534, 65535, 0, 1} {
		r.Observe(&Packet{SequenceNumber: seq}, at, time.Time{})
		at = at.Add(time.Millisecond)
	}
	if r.ExtendedHighSeq() != (1<<16)+1 {
		t.Fatalf("ext high seq = %d", r.ExtendedHighSeq())
	}
	if r.Expected() != 5 {
		t.Fatalf("expected = %d", r.Expected())
	}
	if r.CumulativeLost() != 0 {
		t.Fatalf("lost = %d", r.CumulativeLost())
	}
}

func TestReceiverJitterZeroForPerfectSpacing(t *testing.T) {
	r := NewReceiver(1)
	at := time.Unix(100, 0)
	for i := 0; i < 100; i++ {
		// Arrival spacing exactly matches timestamp spacing → D = 0.
		p := &Packet{SequenceNumber: uint16(i), Timestamp: ToTimestamp(time.Duration(i) * 40 * time.Millisecond)}
		r.Observe(p, at.Add(time.Duration(i)*40*time.Millisecond), time.Time{})
	}
	if r.Jitter() != 0 {
		t.Fatalf("jitter = %d for perfect spacing", r.Jitter())
	}
}

func TestReceiverJitterGrowsWithVariance(t *testing.T) {
	r := NewReceiver(1)
	at := time.Unix(100, 0)
	for i := 0; i < 200; i++ {
		jit := time.Duration(i%2) * 20 * time.Millisecond // alternate ±20ms
		p := &Packet{SequenceNumber: uint16(i), Timestamp: ToTimestamp(time.Duration(i) * 40 * time.Millisecond)}
		r.Observe(p, at.Add(time.Duration(i)*40*time.Millisecond+jit), time.Time{})
	}
	j := r.JitterDuration()
	if j < 5*time.Millisecond || j > 40*time.Millisecond {
		t.Fatalf("jitter = %v, want ≈20ms scale", j)
	}
}

func TestReceiverDelayTracking(t *testing.T) {
	r := NewReceiver(1)
	sent := time.Unix(100, 0)
	r.Observe(&Packet{SequenceNumber: 0}, sent.Add(80*time.Millisecond), sent)
	if r.LastDelay() != 80*time.Millisecond {
		t.Fatalf("delay = %v", r.LastDelay())
	}
}

func TestSenderReportRoundTrip(t *testing.T) {
	sr := &SenderReport{
		SSRC: 0x11223344, NTPTime: 0xAABBCCDDEEFF0011, RTPTime: 90000,
		PacketCount: 1000, OctetCount: 500000,
		Reports: []ReceptionReport{{
			SSRC: 5, FractionLost: 64, CumulativeLost: 123,
			ExtendedHighSeq: 70000, Jitter: 450, LastSR: 99, DelaySinceLastSR: 88,
		}},
	}
	cp, err := UnmarshalControl(sr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := cp.SR
	if got == nil || got.SSRC != sr.SSRC || got.NTPTime != sr.NTPTime ||
		got.PacketCount != sr.PacketCount || got.OctetCount != sr.OctetCount {
		t.Fatalf("SR = %+v", got)
	}
	if len(got.Reports) != 1 || got.Reports[0] != sr.Reports[0] {
		t.Fatalf("blocks = %+v", got.Reports)
	}
}

func TestReceiverReportRoundTrip(t *testing.T) {
	rr := &ReceiverReport{
		SSRC: 9,
		Reports: []ReceptionReport{
			{SSRC: 1, FractionLost: 10, CumulativeLost: 5, ExtendedHighSeq: 100, Jitter: 7},
			{SSRC: 2, FractionLost: 0, CumulativeLost: 0, ExtendedHighSeq: 50, Jitter: 1},
		},
	}
	cp, err := UnmarshalControl(rr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if cp.RR == nil || cp.RR.SSRC != 9 || len(cp.RR.Reports) != 2 {
		t.Fatalf("RR = %+v", cp.RR)
	}
	for i := range rr.Reports {
		if cp.RR.Reports[i] != rr.Reports[i] {
			t.Fatalf("block %d = %+v", i, cp.RR.Reports[i])
		}
	}
}

func TestNegativeCumulativeLostSignExtension(t *testing.T) {
	rr := &ReceiverReport{SSRC: 1, Reports: []ReceptionReport{{SSRC: 2, CumulativeLost: -3}}}
	cp, err := UnmarshalControl(rr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if cp.RR.Reports[0].CumulativeLost != -3 {
		t.Fatalf("cum lost = %d, want -3", cp.RR.Reports[0].CumulativeLost)
	}
}

func TestByeRoundTrip(t *testing.T) {
	g := &Goodbye{SSRC: 77, Reason: "session over"}
	cp, err := UnmarshalControl(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if cp.BYE == nil || cp.BYE.SSRC != 77 || cp.BYE.Reason != "session over" {
		t.Fatalf("BYE = %+v", cp.BYE)
	}
}

func TestSDESRoundTrip(t *testing.T) {
	sd := &SourceDescription{SSRC: 31337, CNAME: "client@host"}
	cp, err := UnmarshalControl(sd.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if cp.SDES == nil || cp.SDES.SSRC != 31337 || cp.SDES.CNAME != "client@host" {
		t.Fatalf("SDES = %+v", cp.SDES)
	}
}

func TestCompoundSplit(t *testing.T) {
	sr := (&SenderReport{SSRC: 1}).Marshal()
	rr := (&ReceiverReport{SSRC: 2}).Marshal()
	bye := (&Goodbye{SSRC: 3, Reason: "x"}).Marshal()
	var comp []byte
	comp = append(comp, sr...)
	comp = append(comp, rr...)
	comp = append(comp, bye...)
	parts, err := SplitCompound(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	types := []int{TypeSR, TypeRR, TypeBYE}
	for i, p := range parts {
		if int(p[1]) != types[i] {
			t.Fatalf("part %d type %d", i, p[1])
		}
	}
	if _, err := SplitCompound(comp[:len(comp)-2]); err == nil {
		t.Fatal("accepted truncated compound")
	}
}

func TestUnmarshalControlErrors(t *testing.T) {
	if _, err := UnmarshalControl([]byte{0x80, 200}); err == nil {
		t.Fatal("accepted short RTCP")
	}
	bad := (&ReceiverReport{SSRC: 1}).Marshal()
	bad[1] = 250 // unknown type
	if _, err := UnmarshalControl(bad); err == nil {
		t.Fatal("accepted unknown RTCP type")
	}
	bad2 := (&ReceiverReport{SSRC: 1}).Marshal()
	bad2[0] = 1 << 6
	if _, err := UnmarshalControl(bad2); err == nil {
		t.Fatal("accepted wrong RTCP version")
	}
}

func TestNTPTimeMonotone(t *testing.T) {
	a := NTPTime(time.Unix(1000, 0))
	b := NTPTime(time.Unix(1000, 500_000_000))
	c := NTPTime(time.Unix(1001, 0))
	if !(a < b && b < c) {
		t.Fatalf("NTP times not monotone: %d %d %d", a, b, c)
	}
	if c-a != 1<<32 {
		t.Fatalf("1s != 2^32 NTP units: %d", c-a)
	}
}

func TestLossFraction(t *testing.T) {
	r := ReceptionReport{FractionLost: 128}
	if r.LossFraction() != 0.5 {
		t.Fatalf("LossFraction = %v", r.LossFraction())
	}
}

// TestSenderForkSeamlessContinuation pins the detach contract the shared-flow
// layer relies on: a fork carries the same SSRC and payload type, continues
// the sequence space and report counters exactly where the original stands,
// and then advances independently.
func TestSenderForkSeamlessContinuation(t *testing.T) {
	s := NewSender(0xABCD, PTMPEG, 100)
	for i := 0; i < 5; i++ {
		s.Next(time.Duration(i)*40*time.Millisecond, []byte("frame"), true)
	}
	f := s.Fork()
	if f.SSRC != s.SSRC || f.PayloadType != s.PayloadType {
		t.Fatalf("fork identity differs: %x/%d vs %x/%d", f.SSRC, f.PayloadType, s.SSRC, s.PayloadType)
	}
	if f.Seq() != s.Seq() {
		t.Fatalf("fork seq %d, original %d — receiver would see a gap", f.Seq(), s.Seq())
	}
	if f.PacketCount() != s.PacketCount() {
		t.Fatalf("fork packet count %d, original %d", f.PacketCount(), s.PacketCount())
	}
	// The receiver that follows the fork sees a contiguous stream…
	p := f.Next(200*time.Millisecond, []byte("frame"), true)
	if p.SequenceNumber != 105 {
		t.Fatalf("fork's first packet seq = %d, want 105", p.SequenceNumber)
	}
	// …and the original is untouched by the fork's progress.
	if s.Seq() != 105 {
		t.Fatalf("original seq moved to %d by the fork", s.Seq())
	}
	if q := s.Next(200*time.Millisecond, []byte("frame"), true); q.SequenceNumber != 105 {
		t.Fatalf("original's next seq = %d, want its own 105", q.SequenceNumber)
	}
}

package chaos

// Cluster-scale chaos: the federation experiments the issue pins — killing
// the serving shard mid-lesson (recovery must land on a replica actually
// holding the lesson), a flash crowd spread by in-protocol admission
// redirects without any server exceeding its watermark, partitions and
// crashes in the middle of a cross-server handoff, and the failover
// episode-reset regression. All on the virtual clock with the pinned seed.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/server"
)

// lesson90 outlives every scenario here, so each kill or partition lands
// mid-playout.
const lesson90 = `<TITLE>federated lecture</TITLE>
<TEXT>cluster chaos subject</TEXT>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=90> </AU_VI>`

// clusterWorld is one simulated federation plus a shared client scope.
type clusterWorld struct {
	clk    *clock.Virtual
	net    *netsim.Network
	users  *auth.DB
	cl     *cluster.Cluster
	cscope *obs.Scope
}

func newClusterWorld(t testing.TB, placement server.Placement, docs map[string]string, sopts server.Options, names ...string) *clusterWorld {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, chaosSeed)
	net.SetDefaultLink(netsim.DefaultLAN())
	users := auth.NewDB()
	if err := users.Subscribe(auth.User{
		Name: "alice", Password: "pw", RealName: "Chaos Tester",
		Email: "alice@example.gr", Class: qos.Standard,
	}, clk.Now()); err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(clk, net, users, cluster.Config{
		Servers: names, Placement: placement, Docs: docs,
		ServerOptions: sopts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &clusterWorld{clk: clk, net: net, users: users, cl: cl,
		cscope: obs.NewScope(clk)}
}

func (w *clusterWorld) newClient(t testing.TB, host string, copts client.Options) *client.Client {
	t.Helper()
	copts.User = "alice"
	copts.Password = "pw"
	copts.PeakRate = 1_000_000
	if copts.Obs == nil {
		copts.Obs = w.cscope
	}
	c, err := client.New(host, w.clk, w.net, copts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastClient is the retry/liveness tuning the cluster scenarios use: quick
// detection and a small retransmission budget, so episodes finish inside a
// few virtual seconds.
func fastClient() client.Options {
	return client.Options{
		HeartbeatInterval: 500 * time.Millisecond,
		LivenessMisses:    2,
		RetryTimeout:      250 * time.Millisecond,
		RetryAttempts:     3,
	}
}

// sessionHost returns the server the client holds a session on, or "".
func sessionHost(c *client.Client, names ...string) string {
	for _, n := range names {
		if c.SessionID(n) != "" {
			return n
		}
	}
	return ""
}

// TestClusterShardCrashRecoversOntoReplica kills the serving shard of a
// three-server federation mid-lesson. The advertised peer set is
// per-document — lecture lives on s1+s2 only — so recovery must land on s2,
// never on the cold s3, and the send into the dead shard must carry the
// typed netsim.ErrHostDown cause.
func TestClusterShardCrashRecoversOntoReplica(t *testing.T) {
	w := newClusterWorld(t,
		server.Placement{"lecture": {"s1", "s2"}, "cold": {"s3"}},
		map[string]string{"lecture": lesson90, "cold": lesson90},
		server.Options{Grace: 5 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3},
		"s1", "s2", "s3")
	c := w.newClient(t, "laptop", fastClient())

	c.Connect("s1")
	w.clk.RunFor(time.Second)
	if lc := c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect = %+v (err %q)", lc, c.LastError())
	}
	c.RequestDoc("lecture")
	w.clk.RunFor(3 * time.Second)
	if c.State("s1") != protocol.StViewing {
		t.Fatalf("state = %v, want viewing on s1", c.State("s1"))
	}

	w.net.SetHostDown("s1", true)
	// The crash is distinguishable from a partition by its typed cause.
	err := w.net.Send(netsim.Packet{
		From: netsim.MakeAddr("probe", 1), To: netsim.MakeAddr("s1", server.ControlPort),
		Payload: []byte("x"), Reliable: true,
	})
	if !errors.Is(err, netsim.ErrHostDown) {
		t.Fatalf("send into dead host = %v, want ErrHostDown", err)
	}
	if errors.Is(err, netsim.ErrPartitioned) {
		t.Fatalf("crash misreported as partition: %v", err)
	}

	w.clk.RunFor(12 * time.Second)
	if got := sessionHost(c, "s1", "s2", "s3"); got != "s2" {
		t.Fatalf("recovered onto %q, want the replica s2 (state s2=%v s3=%v, err %q)",
			got, c.State("s2"), c.State("s3"), c.LastError())
	}
	if c.State("s2") != protocol.StViewing {
		t.Fatalf("state on s2 = %v, want viewing", c.State("s2"))
	}
	if n := w.cscope.Counter("client_failovers").Value(); n < 1 {
		t.Fatalf("client_failovers = %d, want ≥1", n)
	}
}

// TestClusterFlashCrowdSpreadsByRedirects aims seven clients at one server
// of a federation whose session watermark is three. The in-protocol
// redirects must spread the crowd so every client is admitted somewhere and
// no server ends up over its watermark.
func TestClusterFlashCrowdSpreadsByRedirects(t *testing.T) {
	const watermark = 3
	names := []string{"s1", "s2", "s3"}
	w := newClusterWorld(t,
		server.Placement{"hot": names},
		map[string]string{"hot": lesson90},
		server.Options{Grace: 5 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3, SessionWatermark: watermark},
		names...)

	clients := make([]*client.Client, 7)
	for i := range clients {
		copts := fastClient()
		copts.Peers = names
		clients[i] = w.newClient(t, fmt.Sprintf("c%d", i), copts)
	}
	for _, c := range clients {
		c.Connect("s1")
		w.clk.RunFor(200 * time.Millisecond)
	}
	w.clk.RunFor(4 * time.Second)

	perServer := map[string]int{}
	for i, c := range clients {
		h := sessionHost(c, names...)
		if h == "" {
			t.Fatalf("client %d never admitted anywhere (err %q)", i, c.LastError())
		}
		perServer[h]++
	}
	for _, n := range names {
		if perServer[n] > watermark {
			t.Errorf("%s holds %d sessions, over the watermark %d (spread %v)",
				n, perServer[n], watermark, perServer)
		}
	}
	if got := w.cl.CounterTotal("cluster_redirects"); got == 0 {
		t.Error("no admission redirects issued; crowd was not spread in-protocol")
	}
	if got := w.cscope.Counter("client_redirects_followed").Value(); got == 0 {
		t.Error("no redirects followed by clients")
	}
}

// TestClusterPartitionDuringHandoff cuts the client off from the handoff
// target for three seconds, starting just before the handoff is issued. The
// ticketed connect must ride the partition out on its retransmission
// backoff and complete the handoff late — no fallback, no lost session.
func TestClusterPartitionDuringHandoff(t *testing.T) {
	w := newClusterWorld(t,
		server.Placement{"satellite": {"s2"}},
		map[string]string{"satellite": lesson90},
		server.Options{Grace: 10 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3},
		"s1", "s2")
	copts := fastClient()
	copts.RetryAttempts = 5
	c := w.newClient(t, "laptop", copts)

	c.Connect("s1")
	w.clk.RunFor(time.Second)
	if lc := c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect = %+v (err %q)", lc, c.LastError())
	}
	w.net.AddPartition("laptop", "s2", w.clk.Since(clock.Epoch), 3*time.Second)
	c.RequestDoc("satellite")
	w.clk.RunFor(8 * time.Second)

	if c.State("s2") != protocol.StViewing {
		t.Fatalf("state on s2 = %v, want viewing after partition heals (err %q)",
			c.State("s2"), c.LastError())
	}
	if got := w.cscope.Counter("client_handoffs_completed").Value(); got != 1 {
		t.Fatalf("client_handoffs_completed = %d, want 1", got)
	}
	if got := w.cscope.Counter("client_handoff_fallbacks").Value(); got != 0 {
		t.Fatalf("client_handoff_fallbacks = %d, want 0 (retry should ride the partition)", got)
	}
	// The measured handoff latency covers the partition the retries rode out.
	if max := w.cscope.Histogram("handoff_latency").Max(); max < 3*time.Second {
		t.Fatalf("handoff latency max = %v, want ≥ the 3s partition", max)
	}
}

// TestClusterHandoffTargetDownFallsBackToSource crashes the handoff target
// before the client can reach it. With no other replica holding the
// document, the client must give up on the handoff and return to the source
// on the resume token minted when its session was suspended — same session,
// nothing lost.
func TestClusterHandoffTargetDownFallsBackToSource(t *testing.T) {
	w := newClusterWorld(t,
		server.Placement{"satellite": {"s2"}},
		map[string]string{"satellite": lesson90},
		server.Options{Grace: 10 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3},
		"s1", "s2")
	c := w.newClient(t, "laptop", fastClient())

	c.Connect("s1")
	w.clk.RunFor(time.Second)
	if lc := c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect = %+v (err %q)", lc, c.LastError())
	}
	sess := c.SessionID("s1")
	if sess == "" {
		t.Fatal("no session id on s1")
	}

	w.net.SetHostDown("s2", true)
	c.RequestDoc("satellite")
	w.clk.RunFor(8 * time.Second)

	if got := w.cscope.Counter("client_handoff_fallbacks").Value(); got < 1 {
		t.Fatalf("client_handoff_fallbacks = %d, want ≥1", got)
	}
	if got := c.SessionID("s1"); got != sess {
		t.Fatalf("session on s1 = %q, want the original %q (err %q)",
			got, sess, c.LastError())
	}
	if st := c.State("s1"); st != protocol.StBrowsing {
		t.Fatalf("state on s1 = %v, want browsing after falling back", st)
	}
	if got := w.cscope.Counter("client_handoffs_completed").Value(); got != 0 {
		t.Fatalf("client_handoffs_completed = %d, want 0 (target was down)", got)
	}
}

// TestFailedPeerRetriedInLaterEpisode is the failover episode-reset
// regression: a peer that was unreachable during one failover episode must
// be retried in a later one. Episode 1 marks s2 failed (s1 and s2 both die,
// the client lands on s3); episode 2 revives s2, kills s3, and the client
// must work its way back onto s2. If the failedPeers reset on a successful
// reconnect is ever removed, episode 2 finds every peer blacklisted and the
// session is lost — which is exactly what this test turns red on.
func TestFailedPeerRetriedInLaterEpisode(t *testing.T) {
	names := []string{"s1", "s2", "s3"}
	w := newClusterWorld(t,
		server.Placement{"lecture": names},
		map[string]string{"lecture": lesson90},
		server.Options{Grace: 4 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3},
		names...)
	c := w.newClient(t, "laptop", fastClient())

	c.Connect("s1")
	w.clk.RunFor(time.Second)
	c.RequestDoc("lecture")
	w.clk.RunFor(2 * time.Second)
	if c.State("s1") != protocol.StViewing {
		t.Fatalf("state = %v, want viewing on s1", c.State("s1"))
	}

	// Episode 1: s1 and s2 die together. The failover tries s2 first (it is
	// first in the advertised peer set), times out, marks it failed, and
	// lands on s3.
	w.net.SetHostDown("s1", true)
	w.net.SetHostDown("s2", true)
	w.clk.RunFor(14 * time.Second)
	if got := sessionHost(c, names...); got != "s3" {
		t.Fatalf("episode 1 recovered onto %q, want s3 (err %q)", got, c.LastError())
	}
	if c.State("s3") != protocol.StViewing {
		t.Fatalf("state on s3 = %v, want viewing", c.State("s3"))
	}

	// Episode 2: s2 comes back, s3 dies. The client must retry s2 — sticky
	// failedPeers from episode 1 would leave it with no peer at all.
	w.net.SetHostDown("s2", false)
	w.net.SetHostDown("s3", true)
	w.clk.RunFor(16 * time.Second)
	if got := sessionHost(c, names...); got != "s2" {
		t.Fatalf("episode 2 recovered onto %q, want the revived s2 (err %q)",
			got, c.LastError())
	}
	if c.State("s2") != protocol.StViewing {
		t.Fatalf("state on s2 = %v, want viewing", c.State("s2"))
	}
}

// TestClusterFailoverLandsOnSharedFlow crashes the serving shard while a
// second viewer of the same lecture is already riding a shared flow at the
// replica. The failover re-request must land the recovered session on that
// SAME flow — one encode at the replica, two subscribers — not on a private
// sender.
func TestClusterFailoverLandsOnSharedFlow(t *testing.T) {
	w := newClusterWorld(t,
		server.Placement{"lecture": {"s1", "s2"}},
		map[string]string{"lecture": lesson90},
		server.Options{Grace: 5 * time.Second, HeartbeatEvery: 500 * time.Millisecond,
			LivenessMisses: 3, SharedFlows: true},
		"s1", "s2")
	a := w.newClient(t, "laptop-a", fastClient())
	b := w.newClient(t, "laptop-b", fastClient())

	// B watches the lecture at the replica; its flow is the one A must join.
	b.Connect("s2")
	w.clk.RunFor(time.Second)
	b.RequestDoc("lecture")
	w.clk.RunFor(2 * time.Second)
	if b.State("s2") != protocol.StViewing {
		t.Fatalf("b state on s2 = %v, want viewing", b.State("s2"))
	}
	if fs := w.cl.Servers["s2"].FlowStats(); len(fs) == 0 {
		t.Fatalf("no shared flows on s2 for the first viewer: %+v", fs)
	}

	a.Connect("s1")
	w.clk.RunFor(time.Second)
	a.RequestDoc("lecture")
	w.clk.RunFor(2 * time.Second)
	if a.State("s1") != protocol.StViewing {
		t.Fatalf("a state on s1 = %v, want viewing", a.State("s1"))
	}

	w.net.SetHostDown("s1", true)
	w.clk.RunFor(12 * time.Second)
	if got := sessionHost(a, "s1", "s2"); got != "s2" {
		t.Fatalf("a recovered onto %q, want the replica s2 (err %q)", got, a.LastError())
	}
	if a.State("s2") != protocol.StViewing {
		t.Fatalf("a state on s2 = %v, want viewing", a.State("s2"))
	}

	// The recovered session shares B's flows: every time-sensitive stream of
	// the lecture fans out from one encode to both subscribers.
	for _, st := range w.cl.Servers["s2"].FlowStats() {
		if st.Subscribers != 2 {
			t.Fatalf("flow %s/%s has %d subscribers after failover, want 2 (%+v)",
				st.Doc, st.Stream, st.Subscribers, w.cl.Servers["s2"].FlowStats())
		}
	}
	if fs := w.cl.Servers["s2"].FlowStats(); len(fs) == 0 {
		t.Fatal("flows torn down after failover")
	}
	// And both players keep playing.
	w.clk.RunFor(5 * time.Second)
	if rep := b.Player().Report(); rep.Streams["n"].Plays == 0 {
		t.Fatalf("b playout starved after a's failover: %+v", rep.Streams["n"])
	}
}

package chaos

import (
	"bufio"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"

	"repro/internal/client"
)

// flightLine is one JSONL line of a flight dump (the trace event schema;
// the first line of a dump is the header instead).
type flightLine struct {
	Kind   string `json:"kind"`
	Stream string `json:"stream"`
	Value  int64  `json:"value"`
	Note   string `json:"note"`
}

// TestFlightRecorderCapturesFailover arms the client's flight recorder,
// kills the server mid-lesson, and asserts the anomaly-triggered dump holds
// the failover's full causal window in order: heartbeats going unanswered,
// the liveness loss, the failover decision, and the session restarting at
// the replica — the post-mortem a live incident would need, produced by the
// incident itself.
func TestFlightRecorderCapturesFailover(t *testing.T) {
	w := newWorld(t,
		server.Options{Grace: 3 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
		client.Options{},
		"srv-a", "srv-b")
	dir := t.TempDir()
	rec := w.cscope.EnableFlightRecorder(obs.RecorderOptions{
		Dir: dir,
		// The failover fires only once the reconnect to the dead server
		// exhausts its retry budget: 0.75+1.5+3+4+4 ≈ 13.3s after the
		// liveness loss. The flush delay must bridge that quiet gap so the
		// failover extends the pending dump instead of landing after it.
		FlushDelay: 15 * time.Second,
	})
	w.connectAndPlay(t, "srv-a")

	// Timeline: misses at +1..3s, liveness loss ~+3s, reconnect retries
	// until ~+16s, failover + resume at srv-b, dump frozen 15s later. 45s
	// covers it with slack.
	w.net.SetHostDown("srv-a", true)
	w.run(45 * time.Second)

	if got := w.cscope.Counter("client_failovers").Value(); got != 1 {
		t.Fatalf("client_failovers = %d, want 1", got)
	}
	if err := rec.LastErr(); err != nil {
		t.Fatalf("flight dump error: %v", err)
	}
	if got := rec.Dumps(); got != 1 {
		t.Fatalf("flight dumps = %d, want exactly 1 (the failover must extend the liveness-loss window, not dump twice)", got)
	}
	path := rec.LastDumpPath()
	if path == "" {
		t.Fatal("no flight dump path")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty flight dump")
	}
	var hdr struct {
		Anomaly string `json:"anomaly"`
		Events  int    `json:"events"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad dump header %q: %v", sc.Text(), err)
	}
	// The header names the incident's *first* trigger: the moment frames stop
	// arriving the playout deadline-miss burst fires, a beat before the
	// heartbeat path concludes liveness is lost. Either is a valid opener.
	if hdr.Anomaly != "deadline-miss-burst" && hdr.Anomaly != "liveness-loss" {
		t.Fatalf("dump anomaly = %q, want deadline-miss-burst or liveness-loss", hdr.Anomaly)
	}
	var evs []flightLine
	for sc.Scan() {
		var ln flightLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad dump line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if hdr.Events != len(evs) {
		t.Fatalf("header says %d events, dump holds %d", hdr.Events, len(evs))
	}

	// The causal window, in order: heartbeat misses precede the liveness
	// loss, which precedes the failover, which precedes the session starting
	// at the replica.
	idx := func(match func(flightLine) bool) int {
		for i, ev := range evs {
			if match(ev) {
				return i
			}
		}
		return -1
	}
	iMiss := idx(func(ev flightLine) bool { return ev.Kind == "heartbeat-miss" && ev.Stream == "srv-a" })
	iLoss := idx(func(ev flightLine) bool { return ev.Kind == "liveness" && ev.Value == 0 })
	iFail := idx(func(ev flightLine) bool { return ev.Kind == "failover" && ev.Stream == "srv-a" })
	iResume := idx(func(ev flightLine) bool { return ev.Kind == "session-start" && ev.Stream == "srv-b" })
	iAnom := idx(func(ev flightLine) bool { return ev.Kind == "anomaly" })
	for name, i := range map[string]int{
		"heartbeat-miss": iMiss, "liveness-loss": iLoss, "failover": iFail,
		"replica session-start": iResume, "anomaly marker": iAnom,
	} {
		if i < 0 {
			t.Fatalf("dump missing %s; events: %+v", name, evs)
		}
	}
	if !(iMiss < iLoss && iLoss < iFail && iFail < iResume) {
		t.Fatalf("causal order broken: miss@%d loss@%d failover@%d resume@%d", iMiss, iLoss, iFail, iResume)
	}
}

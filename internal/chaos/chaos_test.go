// Package chaos is the fault-injection test suite: it drives complete
// client/server deployments over the simulated network while partitions,
// crashes, restarts and targeted message drops hit the control plane, and
// asserts end-to-end recovery — request retransmission with server-side
// dedup, liveness-triggered suspend, same-session resume within the grace
// window, and failover to a replica past it. Everything runs on the virtual
// clock with a pinned seed, so every run replays identically.
package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/server"
)

// chaosSeed pins the whole suite: `make chaos` must be reproducible.
const chaosSeed = 0xC4A05

// longAV runs for 30 virtual seconds, long enough to hold a partition in
// the middle of its playout.
const longAV = `<TITLE>long av</TITLE>
<TEXT>narrated lecture</TEXT>
<AU_VI SOURCE=au/n SOURCE=vi/c ID=n ID=cv STARTIME=0 DURATION=30> </AU_VI>`

// world is one simulated deployment with telemetry split per process:
// each server and the client own a scope, like separate hosts would.
type world struct {
	clk    *clock.Virtual
	net    *netsim.Network
	users  *auth.DB
	srvs   map[string]*server.Server
	scopes map[string]*obs.Scope
	cscope *obs.Scope
	c      *client.Client
}

func newWorld(t testing.TB, sopts server.Options, copts client.Options, names ...string) *world {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, chaosSeed)
	net.SetDefaultLink(netsim.DefaultLAN())
	users := auth.NewDB()
	users.Subscribe(auth.User{
		Name: "alice", Password: "pw", RealName: "Chaos Tester",
		Email: "alice@example.gr", Class: qos.Standard,
	}, clk.Now())
	w := &world{clk: clk, net: net, users: users,
		srvs: map[string]*server.Server{}, scopes: map[string]*obs.Scope{}}
	for _, name := range names {
		w.addServer(t, name, sopts)
	}
	for _, name := range names {
		var others []string
		for _, p := range names {
			if p != name {
				others = append(others, p)
			}
		}
		w.srvs[name].SetPeers(others)
	}
	w.cscope = obs.NewScope(clk)
	copts.User = "alice"
	copts.Password = "pw"
	copts.PeakRate = 1_000_000
	copts.Obs = w.cscope
	c, err := client.New("laptop", clk, net, copts)
	if err != nil {
		t.Fatal(err)
	}
	w.c = c
	return w
}

// addServer boots (or re-boots, for restart tests) a server: a second call
// with the same name replaces the control listener with a fresh instance
// that has lost all session state.
func (w *world) addServer(t testing.TB, name string, sopts server.Options) *server.Server {
	t.Helper()
	db := server.NewDatabase()
	if err := db.Put("lecture", longAV, "chaos doc"); err != nil {
		t.Fatal(err)
	}
	scope := obs.NewScope(w.clk)
	sopts.Obs = scope
	srv, err := server.New(name, w.clk, w.net, w.users, db, sopts)
	if err != nil {
		t.Fatal(err)
	}
	w.srvs[name] = srv
	w.scopes[name] = scope
	return srv
}

func (w *world) run(d time.Duration) { w.clk.RunFor(d) }

// now returns the offset from the network epoch, the coordinate system of
// the fault schedules.
func (w *world) now() time.Duration { return w.clk.Since(clock.Epoch) }

func (w *world) connectAndPlay(t testing.TB, host string) string {
	t.Helper()
	w.c.Connect(host)
	w.run(time.Second)
	if lc := w.c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect to %s = %+v (err %q)", host, lc, w.c.LastError())
	}
	w.c.RequestDoc("lecture")
	w.run(3 * time.Second)
	if w.c.State(host) != protocol.StViewing {
		t.Fatalf("state after doc request = %v, want viewing", w.c.State(host))
	}
	sess := w.c.SessionID(host)
	if sess == "" {
		t.Fatal("no session id")
	}
	return sess
}

func (w *world) hasEvent(substr string) bool {
	for _, e := range w.c.Events() {
		if strings.Contains(e.What, substr) {
			return true
		}
	}
	return false
}

// admissionsTotal counts the admission decisions that granted bandwidth.
func admissionsTotal(s *server.Server) int {
	adm, deg, _ := s.Admission().Counts(qos.Standard)
	return adm + deg
}

// TestPartitionMidPlayoutResumesSameSession is the acceptance scenario: a
// 5-second partition in the middle of a playout. The client must detect
// the liveness loss, enter the suspend state, and — once the partition
// heals inside the grace window — resume the SAME session, with playout
// continuing and no duplicate admission from the retransmitted probes.
func TestPartitionMidPlayoutResumesSameSession(t *testing.T) {
	w := newWorld(t,
		server.Options{Grace: 20 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
		client.Options{},
		"srv-a", "srv-b")
	sess := w.connectAndPlay(t, "srv-a")

	w.net.AddPartition("laptop", "srv-a", w.now(), 5*time.Second)
	w.run(5 * time.Second)
	// Mid-partition: the client has declared the peer dead and suspended.
	if st := w.c.State("srv-a"); st != protocol.StSuspended {
		t.Fatalf("state mid-partition = %v, want suspended", st)
	}
	if !w.hasEvent("liveness lost: srv-a") {
		t.Fatalf("no liveness-lost event; events: %+v", w.c.Events())
	}
	if !w.c.Player().Paused() {
		t.Fatal("player not paused during the outage")
	}

	w.run(10 * time.Second)
	// Healed: same session, back to viewing, playout running again.
	if st := w.c.State("srv-a"); st != protocol.StViewing {
		t.Fatalf("state after heal = %v, want viewing", st)
	}
	if got := w.c.SessionID("srv-a"); got != sess {
		t.Fatalf("session changed across recovery: %q → %q", sess, got)
	}
	if w.c.Player().Paused() {
		t.Fatal("player still paused after recovery")
	}
	if got := w.cscope.Counter("client_sessions_resumed").Value(); got != 1 {
		t.Fatalf("client_sessions_resumed = %d, want 1", got)
	}
	if got := w.scopes["srv-a"].Counter("server_sessions_resumed").Value(); got != 1 {
		t.Fatalf("server_sessions_resumed = %d, want 1", got)
	}
	// Retransmitted control requests must not have double effects.
	if got := admissionsTotal(w.srvs["srv-a"]); got != 1 {
		t.Fatalf("admissions on srv-a = %d, want 1 (no duplicate admission)", got)
	}
	if got := w.cscope.Counter("client_failovers").Value(); got != 0 {
		t.Fatalf("client_failovers = %d, want 0", got)
	}
	// Playout continues to completion on the same server.
	w.run(30 * time.Second)
	rep := w.c.Player().Report()
	if n := rep.Streams["n"]; n.Plays == 0 {
		t.Fatalf("no audio plays after recovery: %+v", n)
	}
}

// TestServerCrashFailsOverToPeer kills the server for good: past the grace
// window the client must fail over to the advertised replica, which
// re-admits the session and serves the interrupted document.
func TestServerCrashFailsOverToPeer(t *testing.T) {
	w := newWorld(t,
		server.Options{Grace: 3 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
		client.Options{},
		"srv-a", "srv-b")
	w.connectAndPlay(t, "srv-a")

	w.net.SetHostDown("srv-a", true)
	w.run(30 * time.Second)

	if got := w.cscope.Counter("client_failovers").Value(); got != 1 {
		t.Fatalf("client_failovers = %d, want 1", got)
	}
	if !w.hasEvent("failover srv-a → srv-b") {
		t.Fatalf("no failover event; events: %+v", w.c.Events())
	}
	if cur := w.c.CurrentServer(); cur != "srv-b" {
		t.Fatalf("current server = %q, want srv-b", cur)
	}
	if st := w.c.State("srv-b"); st != protocol.StViewing && st != protocol.StBrowsing {
		t.Fatalf("state at replica = %v, want viewing (or browsing after playout)", st)
	}
	if w.c.SessionID("srv-b") == "" {
		t.Fatal("no session at the replica")
	}
	// The replica re-admitted the session and recorded it as a failover.
	if got := w.scopes["srv-b"].Counter("admission_failover_readmits").Value(); got != 1 {
		t.Fatalf("replica failover re-admissions = %d, want 1", got)
	}
	if got := admissionsTotal(w.srvs["srv-b"]); got != 1 {
		t.Fatalf("admissions on srv-b = %d, want 1", got)
	}
}

// TestServerRestartLosesSessions reboots the server as a fresh instance
// (same name, empty session table): the heartbeat ack turns negative, the
// recovery probe gets SessionLost, and the client fails over immediately
// instead of burning the whole grace window.
func TestServerRestartLosesSessions(t *testing.T) {
	sopts := server.Options{Grace: 10 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3}
	w := newWorld(t, sopts, client.Options{}, "srv-a", "srv-b")
	w.connectAndPlay(t, "srv-a")

	// Reboot srv-a: the new instance takes over the control address with no
	// knowledge of the session.
	restarted := w.addServer(t, "srv-a", sopts)
	restarted.SetPeers([]string{"srv-b"})
	w.run(20 * time.Second)

	if !w.hasEvent("session lost at srv-a") {
		t.Fatalf("no session-lost event; events: %+v", w.c.Events())
	}
	if got := w.cscope.Counter("client_failovers").Value(); got != 1 {
		t.Fatalf("client_failovers = %d, want 1", got)
	}
	if cur := w.c.CurrentServer(); cur != "srv-b" {
		t.Fatalf("current server = %q, want srv-b", cur)
	}
	if got := w.scopes["srv-b"].Counter("admission_failover_readmits").Value(); got != 1 {
		t.Fatalf("replica failover re-admissions = %d, want 1", got)
	}
}

// TestDroppedConnectResultRetransmits loses exactly the connect reply: the
// client must retransmit, the server must deduplicate the repeated request
// and re-send the cached reply, and admission must run exactly once.
func TestDroppedConnectResultRetransmits(t *testing.T) {
	w := newWorld(t, server.Options{}, client.Options{}, "srv-a")
	w.net.DropNext("srv-a", "laptop", 1)
	w.c.Connect("srv-a")
	w.run(5 * time.Second)

	if lc := w.c.LastConnect(); lc == nil || !lc.OK {
		t.Fatalf("connect never completed: %+v", lc)
	}
	if got := w.cscope.Counter("client_ctrl_retries").Value(); got == 0 {
		t.Fatal("no client retransmissions recorded")
	}
	if got := w.scopes["srv-a"].Counter("server_ctrl_dedup_hits").Value(); got == 0 {
		t.Fatal("no server dedup hits recorded")
	}
	if got := admissionsTotal(w.srvs["srv-a"]); got != 1 {
		t.Fatalf("admissions = %d, want exactly 1", got)
	}
	if n := w.srvs["srv-a"].Sessions(); n != 1 {
		t.Fatalf("sessions = %d, want 1", n)
	}
}

// TestDroppedDocResponseRetransmits loses exactly the doc response (not
// the heartbeat acks sharing the path): dedup must re-send the cached
// scenario without serving the document twice.
func TestDroppedDocResponseRetransmits(t *testing.T) {
	w := newWorld(t, server.Options{}, client.Options{}, "srv-a")
	w.c.Connect("srv-a")
	w.run(time.Second)
	w.net.DropNextMatching(1, "drop doc-response", func(p netsim.Packet) bool {
		return p.From.Host() == "srv-a" && p.To.Host() == "laptop" &&
			len(p.Payload) > 0 && protocol.MsgType(p.Payload[0]) == protocol.MsgDocResponse
	})
	w.c.RequestDoc("lecture")
	w.run(5 * time.Second)

	if st := w.c.State("srv-a"); st != protocol.StViewing {
		t.Fatalf("state = %v, want viewing after retransmitted doc request", st)
	}
	if got := w.scopes["srv-a"].Counter("server_ctrl_dedup_hits").Value(); got == 0 {
		t.Fatal("no server dedup hits recorded")
	}
	if got := w.scopes["srv-a"].Counter("server_docs_served").Value(); got != 1 {
		t.Fatalf("docs served = %d, want exactly 1", got)
	}
}

// TestConnectTimeoutSurfaces starves a connect of any reply (server down,
// no replicas): the attempt must end in a visible timeout instead of
// sitting in Connecting forever.
func TestConnectTimeoutSurfaces(t *testing.T) {
	w := newWorld(t, server.Options{}, client.Options{}, "srv-a")
	w.net.SetHostDown("srv-a", true)
	w.c.Connect("srv-a")
	w.run(20 * time.Second)

	if got := w.cscope.Counter("client_ctrl_timeouts").Value(); got != 1 {
		t.Fatalf("client_ctrl_timeouts = %d, want 1", got)
	}
	if !w.hasEvent("connect timed out: srv-a") {
		t.Fatalf("no connect-timeout event; events: %+v", w.c.Events())
	}
	if st := w.c.State("srv-a"); st != protocol.StIdle {
		t.Fatalf("state = %v, want idle after abandoned connect", st)
	}
	found := false
	for _, e := range w.cscope.Trace().Events() {
		if e.Kind == obs.EvCtrlTimeout {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvCtrlTimeout trace event")
	}
}

// TestChaosDeterministic replays the partition scenario twice and expects
// identical client event logs: the whole fault schedule is a pure function
// of the seed and the virtual clock.
func TestChaosDeterministic(t *testing.T) {
	run := func() []string {
		w := newWorld(t,
			server.Options{Grace: 20 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
			client.Options{},
			"srv-a", "srv-b")
		w.connectAndPlay(t, "srv-a")
		w.net.AddPartition("laptop", "srv-a", w.now(), 5*time.Second)
		w.run(15 * time.Second)
		var log []string
		for _, e := range w.c.Events() {
			log = append(log, e.At.Sub(clock.Epoch).String()+" "+e.What)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event logs differ in length: %d vs %d\n%v\n%v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestStaleHeartbeatKeepsSession pins the heartbeat-mismatch fix: a beat
// carrying a stale SessionID from an address that holds a live session (a
// delayed frame from before a reconnect, or a client racing a resume) must
// not be acked OK=false — that ack means "I don't know you" and sends a
// perfectly healthy client into suspend and failover. The server must
// recognize the live session behind the address, ack OK=true with the
// session's current ID, and count the mismatch.
func TestStaleHeartbeatKeepsSession(t *testing.T) {
	w := newWorld(t,
		server.Options{Grace: 20 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
		client.Options{},
		"srv-a", "srv-b")
	w.connectAndPlay(t, "srv-a")

	// Forge a heartbeat from the client's control address with a session
	// ID the server never issued.
	w.net.Send(netsim.Packet{
		From:     netsim.MakeAddr("laptop", 6000),
		To:       netsim.MakeAddr("srv-a", server.ControlPort),
		Payload:  protocol.MustEncode(protocol.MsgHeartbeat, protocol.Heartbeat{SessionID: "srv-a-sess-9999"}),
		Reliable: true,
	})
	w.run(5 * time.Second)

	if got := w.scopes["srv-a"].Counter("server_stale_heartbeats").Value(); got == 0 {
		t.Fatal("server did not count the stale heartbeat")
	}
	// Pre-fix, the OK=false ack made the client declare srv-a dead.
	if got := w.cscope.Counter("client_liveness_losses").Value(); got != 0 {
		t.Fatalf("client_liveness_losses = %d, want 0: a stale heartbeat must not read as a dead server", got)
	}
	if got := w.cscope.Counter("client_failovers").Value(); got != 0 {
		t.Fatalf("client_failovers = %d, want 0", got)
	}
	if got := w.cscope.Counter("client_sessions_resumed").Value(); got != 0 {
		t.Fatalf("client_sessions_resumed = %d, want 0 (no spurious recovery)", got)
	}
	if st := w.c.State("srv-a"); st != protocol.StViewing {
		t.Fatalf("state after stale heartbeat = %v, want viewing", st)
	}
}

// TestUserPauseSurvivesSuspendAndRecovery pins the pause/park split: a user
// pause must survive an involuntary liveness suspend. The client recovers
// into the PAUSED presentation (not playback), the server keeps the sender
// user-paused across park/unpark (zero frames for the whole window), and a
// later user resume picks the playout back up.
func TestUserPauseSurvivesSuspendAndRecovery(t *testing.T) {
	w := newWorld(t,
		server.Options{Grace: 20 * time.Second, HeartbeatEvery: time.Second, LivenessMisses: 3},
		client.Options{},
		"srv-a", "srv-b")
	w.connectAndPlay(t, "srv-a")

	w.c.Pause()
	w.run(time.Second)
	if st := w.c.State("srv-a"); st != protocol.StPaused {
		t.Fatalf("state after pause = %v, want paused", st)
	}
	frames := w.scopes["srv-a"].Counter("server_media_frames_sent")
	base := frames.Value()

	w.net.AddPartition("laptop", "srv-a", w.now(), 5*time.Second)
	w.run(5 * time.Second)
	if st := w.c.State("srv-a"); st != protocol.StSuspended {
		t.Fatalf("state mid-partition = %v, want suspended", st)
	}

	w.run(10 * time.Second)
	// Recovered — but into the paused presentation the user left behind.
	if st := w.c.State("srv-a"); st != protocol.StPaused {
		t.Fatalf("state after heal = %v, want paused (recovery must not auto-resume)", st)
	}
	if !w.c.Player().Paused() {
		t.Fatal("player resumed by recovery despite the user's pause")
	}
	// The server transmitted nothing across pause → suspend → recover: the
	// suspend parked an already-paused sender and the reattach unparked it
	// without clearing the user pause.
	if got := frames.Value(); got != base {
		t.Fatalf("server sent %d frames while user-paused across the outage", got-base)
	}

	w.c.Resume()
	w.run(2 * time.Second)
	if st := w.c.State("srv-a"); st != protocol.StViewing {
		t.Fatalf("state after resume = %v, want viewing", st)
	}
	if w.c.Player().Paused() {
		t.Fatal("player still paused after user resume")
	}
	if frames.Value() == base {
		t.Fatal("no frames after the user resumed")
	}
	// The interrupted lecture still plays out to completion.
	w.run(40 * time.Second)
	rep := w.c.Player().Report()
	if n := rep.Streams["n"]; n.Plays == 0 {
		t.Fatalf("no audio plays after pause-spanning recovery: %+v", n)
	}
}

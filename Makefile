# Repo checks. `make check` is the full gate: vet + build + tests plus the
# race detector over the concurrency-heavy packages (live transport, the
# network simulator, telemetry, and the playout scheduler).

GO ?= go

.PHONY: check vet build test race

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/transport/... ./internal/netsim/... ./internal/obs/... ./internal/playout/...

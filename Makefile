# Repo checks. `make check` is the full gate: vet + build + tests plus the
# race detector over the concurrency-heavy packages (live transport, the
# network simulator, telemetry, the playout scheduler, the wire codecs and
# buffer pooling of the media path, and both control-plane endpoints); the
# allocation regression tests in internal/server ride along in `test`.
# `make chaos` runs the fault-injection suite on its own, with the pinned
# seed and the race detector. `make bench-dataplane` measures the server
# media data plane (with -benchmem allocation reporting) and writes
# BENCH_dataplane.json.

GO ?= go

.PHONY: check vet build test race chaos bench-dataplane

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/transport/... ./internal/netsim/... ./internal/obs/... ./internal/playout/... ./internal/client/... ./internal/server/... ./internal/media/... ./internal/rtp/...

chaos:
	$(GO) test -race -count=1 ./internal/chaos/...

bench-dataplane:
	$(GO) test -bench BenchmarkDataPlane -benchmem -run '^$$' ./internal/server/
	$(GO) run ./cmd/experiments -dataplane BENCH_dataplane.json

# Repo checks. `make check` is the full gate: vet + build + tests plus the
# race detector over the concurrency-heavy packages (live transport, the
# network simulator, telemetry, the playout scheduler, the wire codecs and
# buffer pooling of the media path, and both control-plane endpoints —
# internal/server includes a connect/disconnect churn stress that drives
# the sharded session state, dedup rings and timer wheels from concurrent
# goroutines, and a shared-flow churn stress that hammers the flow
# registry's attach/detach/pause/reload surface while the flows pump); the
# allocation regression tests in internal/server ride along in `test`.
# `make chaos` runs the fault-injection suite on its own, with the pinned
# seed and the race detector. `make bench-dataplane` measures the server
# media data plane (with -benchmem allocation reporting) and writes
# BENCH_dataplane.json, including the shared-flow fan-out sweep (encodes
# flat across 1→64 viewers of one hot document while deliveries scale). `make bench-controlplane` measures session
# establishment under duplicate-fire connect storms, heartbeat throughput
# and the timer-wheel sweep cost at 1k/10k/100k resident sessions, writes
# BENCH_controlplane.json, and fails if the per-tick sweep cost is not
# sublinear in resident sessions (the gate lives in
# internal/experiments/ctrlbench.go). `make bench-cluster` runs the
# federated-cluster load/chaos harness (flash-crowd redirects, signed
# cross-server handoffs, a mid-lesson shard kill) and writes
# BENCH_cluster.json, failing unless every session on the killed server
# recovers onto a replica. `make bench-verify` re-validates the
# committed BENCH_*.json artifacts against their schemas and gates (paced
# lock/alloc invariants, span-overhead ceiling, sweep sublinearity, the
# cluster zero-lost-sessions invariant) without re-running the benchmarks,
# so `make check` catches a stale or hand-mangled artifact
# deterministically.

GO ?= go

.PHONY: check vet build test race chaos bench-dataplane bench-controlplane bench-cluster bench-netsim bench-verify

check: vet build test race bench-verify

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/clock/... ./internal/transport/... ./internal/netsim/... ./internal/obs/... ./internal/playout/... ./internal/client/... ./internal/server/... ./internal/media/... ./internal/rtp/... ./internal/cluster/...

chaos:
	$(GO) test -race -count=1 ./internal/chaos/...

bench-dataplane:
	$(GO) test -bench BenchmarkDataPlane -benchmem -run '^$$' ./internal/server/
	$(GO) run ./cmd/experiments -dataplane BENCH_dataplane.json

bench-controlplane:
	$(GO) test -bench BenchmarkControlPlane -benchmem -benchtime 1x -run '^$$' ./internal/server/
	$(GO) run ./cmd/experiments -controlplane BENCH_controlplane.json

bench-cluster:
	$(GO) run ./cmd/experiments -cluster BENCH_cluster.json

bench-netsim:
	$(GO) test -bench BenchmarkVirtualRun -benchmem -run '^$$' ./internal/clock/
	$(GO) run ./cmd/experiments -netsim BENCH_netsim.json

bench-verify:
	$(GO) run ./cmd/experiments -verify-bench .

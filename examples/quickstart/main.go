// Quickstart: parse the paper's Figure 2 scenario, play it end to end over
// a simulated broadband network (server, flow scheduler, RTP media
// connections, client buffers, presentation scheduler), and print the
// reconstructed timeline plus the playout quality report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hml"
	"repro/internal/playout"
	"repro/internal/scenario"
)

func main() {
	// 1. The hypermedia document, in the paper's markup language.
	doc := hml.Figure2Source
	sc, err := scenario.Parse(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The presentation scenario, as authored:")
	fmt.Println(scenario.RenderTimeline(sc, 64))

	// 2. Play it: one call builds the whole Figure 3 architecture around
	// the document and runs the session on a simulated LAN.
	res, err := core.Play(core.PlayConfig{DocSource: doc, Seed: 1996})
	if err != nil {
		log.Fatal(err)
	}

	// 3. What the viewer saw: the actual playout trace over the schedule,
	// then the per-stream quality numbers.
	fmt.Printf("startup delay (deliberate initial buffer fill): %v\n\n", res.Startup)
	fmt.Print(playout.RenderTrace(res.Display, scenario.BuildSchedule(res.Scenario), 64))
	fmt.Println()
	fmt.Print(res.Playout.Summarize())
	fmt.Printf("\nintermedia skew (A1/V lip-sync): mean %.1fms, max %.1fms\n",
		res.MeanSkewMS(), res.MaxSkewMS())
	fmt.Printf("composite quality score: %.3f\n\n", res.QualityScore())

	// 4. A slice of the display trace: the first few playout events.
	fmt.Println("first display events:")
	n := 0
	for _, ev := range res.Display.Events() {
		if ev.Kind != playout.EvStart && ev.Kind != playout.EvPlay {
			continue
		}
		if ev.Kind == playout.EvPlay && ev.Frame.Index > 0 {
			continue
		}
		fmt.Printf("  t=%-8v %-6s %s\n", ev.At.Round(time.Millisecond), ev.Kind, ev.StreamID)
		n++
		if n >= 10 {
			break
		}
	}
}

// News on demand: a multimedia news bulletin streamed while the network
// degrades mid-session. The client's feedback reports drive the server's
// media stream quality converter: video compression deepens first, audio
// only afterwards, and quality is gracefully restored when the congestion
// clears — the paper's long-term synchronization recovery in action.
//
// Run with: go run ./examples/news-on-demand
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/qos"
)

const bulletin = `<TITLE>Evening news bulletin</TITLE>
<H1>Headlines</H1>
<PAR>
<TEXT>A pre-orchestrated news programme: anchor segment with
<B>synchronized audio and video</B>, followed by a correspondent report.</TEXT>
<AU_VI SOURCE=au/anchor SOURCE=vi/anchor ID=anchor-a ID=anchor-v STARTIME=0 DURATION=25> </AU_VI>
<IMG SOURCE=img/map ID=map STARTIME=10 DURATION=15 WIDTH=480 HEIGHT=360 NOTE="situation map"> </IMG>
<AU SOURCE=au/report ID=report STARTIME=25 DURATION=10> </AU>
`

func main() {
	cfg := core.PlayConfig{
		DocSource: bulletin,
		Seed:      42,
		// A 2.5 Mb/s access link that loses more than half its capacity
		// between t=8s and t=22s.
		Link: netsim.LinkConfig{
			Bandwidth: 2_500_000,
			Delay:     30 * time.Millisecond,
			Jitter:    20 * time.Millisecond,
			Loss:      0.002,
		},
		Phases: []netsim.Phase{{
			Start: 8 * time.Second, Duration: 14 * time.Second,
			BandwidthFactor: 0.45,
		}},
	}
	cfg.Client.FeedbackInterval = 500 * time.Millisecond
	cfg.Client.Playout.EnableSkewControl = true
	cfg.Client.Playout.EnableWatermarkControl = true

	res, err := core.Play(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("grading actions taken by the server QoS manager:")
	for _, a := range res.Actions {
		fmt.Printf("  %-8s %-9s level %d → %d   (%s)\n",
			a.StreamID, a.Kind, a.From, a.To, a.Reason)
	}
	if len(res.Actions) == 0 {
		fmt.Println("  (none — network never degraded)")
	}

	fmt.Println("\nanchor video quality level over time:")
	if s := res.LevelSeries["anchor-v"]; s != nil {
		for _, p := range s.Points() {
			fmt.Printf("  t=%-6v level %.0f\n", p.T.Round(time.Second), p.V)
		}
	}

	fmt.Printf("\nnetwork loss over the session: %.1f%%\n", 100*res.Net.LossRate())
	fmt.Printf("playout gaps: %d of %d expected frames\n", res.Gaps(), res.Expected())
	fmt.Printf("quality score: %.3f\n", res.QualityScore())

	degraded := res.DegradeCount()
	upgraded := 0
	for _, a := range res.Actions {
		if a.Kind == qos.ActUpgrade || a.Kind == qos.ActRestore {
			upgraded++
		}
	}
	fmt.Printf("\nsummary: %d degradations during congestion, %d recoveries after it cleared\n",
		degraded, upgraded)
}

// Distance learning: the complete Hermes service of §6 — a student
// subscribes, searches the federation, views a multi-slide lesson that
// auto-advances between units, navigates to a second server (suspending the
// first connection), and exchanges e-mail with the tutor.
//
// Run with: go run ./examples/distance-learning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/hermes"
	"repro/internal/protocol"
	"repro/internal/qos"
	"repro/internal/scenario"
)

func main() {
	// Two Hermes servers: an algorithms course and a networks course.
	svc, err := hermes.NewSimulated(hermes.Config{
		Seed: 7,
		Servers: []hermes.ServerSpec{
			{Name: "hermes-algorithms", Lessons: hermes.MakeCourse("algo", 2, 2, 8*time.Second)},
			{Name: "hermes-networks", Lessons: hermes.MakeCourse("nets", 1, 2, 8*time.Second)},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A new student arrives with no subscription.
	b := svc.NewBrowser("maria", "secret", client.Options{AutoFollowLinks: true})
	b.Connect("hermes-algorithms")
	svc.Run(time.Second)
	if lc := b.LastConnect(); lc != nil && lc.NeedSubscription {
		fmt.Println("server: subscription required — submitting the form")
		b.Subscribe(protocol.SubscriptionForm{
			User: "maria", Password: "secret", RealName: "Maria P.",
			Address: "Rio, Patras", Email: "maria@students.example.gr",
			Phone: "061-997xxx", Class: qos.Standard,
		})
		svc.Run(time.Second)
	}
	fmt.Printf("state toward hermes-algorithms: %v\n", b.State("hermes-algorithms"))

	// Federated search across both servers.
	b.Search("unit 1")
	svc.Run(2 * time.Second)
	hits, _ := b.SearchResults()
	fmt.Println("\nsearch \"unit 1\" found:")
	for _, h := range hits {
		fmt.Printf("  %-10s %q on %s\n", h.Name, h.Title, h.Server)
	}

	// View the first lesson; its timed sequential link auto-advances to
	// unit 2 ("the tutor's way").
	fmt.Println("\nviewing algo-L1 (auto-advances to algo-L2)...")
	b.RequestDoc("algo-L1")
	svc.Run(45 * time.Second)
	fmt.Printf("history: %v\n", b.History())
	rep := b.Player().Report()
	fmt.Printf("last unit played %d streams\n", len(rep.Streams))

	// Explorational jump to the networks server: the algorithms
	// connection is suspended with a grace period.
	fmt.Println("\nfollowing an explorational link to hermes-networks...")
	b.FollowLink(scenario.Link{Target: "nets-L1", Host: "hermes-networks"})
	svc.Run(3 * time.Second)
	fmt.Printf("hermes-algorithms is now: %v (resume token held: %v)\n",
		b.State("hermes-algorithms"), b.SuspendToken("hermes-algorithms") != "")
	svc.Run(20 * time.Second)

	// Return within the grace period: no re-authentication.
	b.ReturnTo("hermes-algorithms")
	svc.Run(time.Second)
	fmt.Printf("after returning: %v\n", b.State("hermes-algorithms"))

	// Asynchronous tutor interaction over SMTP/MIME.
	fmt.Println("\nmailing the tutor...")
	if err := svc.AskTutor("maria@students.example.gr",
		"Question on algo unit 2", "Why do the audio and video start together?"); err != nil {
		log.Fatal(err)
	}
	svc.TutorReply("maria@students.example.gr", "Re: Question on algo unit 2",
		"They form an AU_VI synchronization group — see lesson algo-L2.")
	for _, m := range svc.Mail.Spool.Mailbox("maria@students.example.gr") {
		fmt.Printf("  inbox: %q — %s\n", m.Subject, m.Body)
	}

	b.Disconnect()
	svc.Run(time.Second)
	fmt.Println("\nsession closed; total charge:", svc.Users.Balance("maria"))
}

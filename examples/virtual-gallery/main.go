// Virtual gallery: a remote-access gallery tour — one of the application
// domains the paper's introduction motivates. Each room is a hypermedia
// document showing exhibit images with a synchronized audio guide; timed
// sequential hyperlinks walk the visitor from room to room automatically,
// while explorational links offer detours.
//
// Run with: go run ./examples/virtual-gallery
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/hermes"
	"repro/internal/playout"
	"repro/internal/qos"
)

func room(name, title string, next string, exhibits int) hermes.LessonSpec {
	src := fmt.Sprintf("<TITLE>%s</TITLE>\n<H1>%s</H1>\n<PAR>\n", title, title)
	src += "<TEXT>Walk slowly; the audio guide follows the exhibits.</TEXT>\n"
	per := 6 * time.Second
	for i := 0; i < exhibits; i++ {
		if i == 0 {
			src += fmt.Sprintf("<IMG SOURCE=img/%s-%d ID=%s-img%d STARTIME=0 DURATION=%d WIDTH=800 HEIGHT=600 NOTE=\"exhibit 1\"> </IMG>\n",
				name, i, name, i, int(per.Seconds()))
			continue
		}
		// Relative timing: each exhibit follows the previous one (the
		// AFTER extension), so re-pacing a room means editing one number.
		src += fmt.Sprintf("<IMG SOURCE=img/%s-%d ID=%s-img%d AFTER=%s-img%d DURATION=%d WIDTH=800 HEIGHT=600 NOTE=\"exhibit %d\"> </IMG>\n",
			name, i, name, i, name, i-1, int(per.Seconds()), i+1)
	}
	// One continuous audio-guide track for the whole room.
	src += fmt.Sprintf("<AU SOURCE=au/%s-guide ID=%s-guide STARTIME=0 DURATION=%d> </AU>\n",
		name, name, exhibits*int(per.Seconds()))
	if next != "" {
		src += fmt.Sprintf("<SEP>\n<HLINK HREF=%s AT=%d KIND=SEQ NOTE=\"next room\"> </HLINK>\n",
			next, exhibits*int(per.Seconds()))
	}
	return hermes.LessonSpec{Name: name, Source: src, Description: title}
}

func main() {
	svc, err := hermes.NewSimulated(hermes.Config{
		Seed: 11,
		Servers: []hermes.ServerSpec{{
			Name: "gallery",
			Lessons: []hermes.LessonSpec{
				room("entrance", "Entrance hall — classical sculpture", "impressionists", 2),
				room("impressionists", "Impressionist wing", "modern", 2),
				room("modern", "Modern art wing", "", 2),
			},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Enroll("visitor", "ticket", qos.Economy)

	b := svc.NewBrowser("visitor", "ticket", client.Options{AutoFollowLinks: true})
	b.Connect("gallery")
	svc.Run(time.Second)
	fmt.Println("entering the gallery...")
	b.RequestDoc("entrance")

	// The tour advances by itself: entrance (12s) → impressionists (12s)
	// → modern (12s).
	svc.Run(50 * time.Second)

	fmt.Println("\nrooms visited, in order:")
	for i, roomName := range b.History() {
		fmt.Printf("  %d. %s\n", i+1, roomName)
	}

	fmt.Println("\nexhibits shown in the last room:")
	for _, ev := range b.Display().Events() {
		if ev.Kind == playout.EvPlay && strings.Contains(ev.StreamID, "-img") {
			fmt.Printf("  t=%-5v %s (%d bytes at %q quality)\n",
				ev.At.Round(time.Second), ev.StreamID, ev.Frame.Size, levelName(ev.Frame.Level))
		}
	}
	rep := b.Player().Report()
	guide := rep.Streams["modern-guide"]
	fmt.Printf("\naudio guide in the modern wing: %d/%d blocks played, %d gaps\n",
		guide.Plays, guide.Expected, guide.Gaps)
}

func levelName(l int) string {
	if l == 0 {
		return "full"
	}
	return fmt.Sprintf("reduced-%d", l)
}

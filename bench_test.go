// Package repro's benchmark harness: one benchmark per paper artifact
// (figures F1–F5, claims E1–E8, as indexed in DESIGN.md) plus
// micro-benchmarks of the substrates. Each figure/claim benchmark runs the
// corresponding experiment end to end; `go test -bench . -benchmem` therefore
// regenerates every table the reproduction reports (see cmd/experiments for
// the printable output, EXPERIMENTS.md for the recorded results).
package repro_test

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hml"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rtp"
	"repro/internal/scenario"
)

// --- figure benchmarks -------------------------------------------------

func BenchmarkF1GrammarParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F1Grammar(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF2ScheduleBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.F2Timeline(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.F3EndToEnd(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF4Protocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F4Protocol(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF5StackSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.F5StackSplit(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- claim benchmarks ----------------------------------------------------

func BenchmarkE1TimeWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1TimeWindow(uint64(i+1), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2SkewControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2SkewControl(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3QoSGrading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3Grading(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4Combined(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Admission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5Admission(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Startup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6Startup(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Suspend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7Suspend(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Search(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Search(uint64(i+1), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9Scale(uint64(i+1), true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10SharedUplink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10SharedUplink(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ---------------------------------------------------

func BenchmarkAblationDegradeOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A1DegradeOrder(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHysteresis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A2Hysteresis(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWindowSafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A3WindowSafety(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

func BenchmarkHMLParseFigure2(b *testing.B) {
	src := hml.Figure2Source
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hml.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHMLParseLargeLesson(b *testing.B) {
	src := hml.LessonSource("bench", 50, 10*time.Second)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hml.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHMLSerialize(b *testing.B) {
	doc := hml.Figure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = hml.Serialize(doc)
	}
}

func BenchmarkScheduleBuild(b *testing.B) {
	sc, err := scenario.Parse(hml.LessonSource("bench", 50, 10*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sch := scenario.BuildSchedule(sc)
		if err := sch.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTPMarshalUnmarshal(b *testing.B) {
	p := &rtp.Packet{
		Marker: true, PayloadType: rtp.PTMPEG,
		SequenceNumber: 4242, Timestamp: 1234567, SSRC: 99,
		Payload: make([]byte, 1400),
	}
	b.SetBytes(int64(len(p.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Marshal()
		if _, err := rtp.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTCPReceiverReport(b *testing.B) {
	r := rtp.NewReceiver(7)
	at := time.Unix(100, 0)
	for i := 0; i < 1000; i++ {
		r.Observe(&rtp.Packet{SequenceNumber: uint16(i), Timestamp: uint32(i) * 3600}, at, time.Time{})
		at = at.Add(40 * time.Millisecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rr := rtp.ReceiverReport{SSRC: 1, Reports: []rtp.ReceptionReport{r.Report()}}
		if _, err := rtp.UnmarshalControl(rr.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimThroughput(b *testing.B) {
	clk := clock.NewSim()
	net := netsim.New(clk, 1)
	net.SetLink("a", "b", netsim.LinkConfig{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	got := 0
	net.Listen("b:1", func(netsim.Packet) { got++ })
	payload := make([]byte, 1000)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(netsim.Packet{From: "a:1", To: "b:1", Payload: payload})
		if i%1024 == 0 {
			clk.RunUntilIdle()
		}
	}
	clk.RunUntilIdle()
}

func BenchmarkBufferPushPop(b *testing.B) {
	buf := buffer.New(buffer.Config{StreamID: "x", FrameInterval: time.Millisecond, Window: time.Hour, HighWM: time.Hour})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Push(buffer.Item{Frame: media.Frame{Index: i, PTS: time.Duration(i) * time.Millisecond}})
		buf.Pop()
	}
}

func BenchmarkVideoFrameGeneration(b *testing.B) {
	v := media.NewVideo("bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.FrameAt(i, i%v.Levels())
	}
}

func BenchmarkCorePlayFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Play(core.PlayConfig{DocSource: hml.Figure2Source, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Plays() == 0 {
			b.Fatal("no plays")
		}
	}
}

func BenchmarkObsOverhead(b *testing.B) {
	// A nil scope is telemetry switched off: instrument lookups return
	// shared no-ops and Emit returns immediately. The instrumented hot
	// paths (buffer push, playout tick) rely on this costing nothing.
	var scope *obs.Scope
	c := scope.Counter("hot_counter")
	h := scope.Histogram("hot_histogram")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(time.Duration(i))
		scope.Counter("hot_counter").Add(1)
		scope.Emit(obs.EvBufferWatermark, "x", int64(i), "note")
	}
}
